#include "forensics/report.h"

#include <fstream>
#include <sstream>

namespace acdc::forensics {
namespace {

void append_breakdown_text(std::ostringstream& os, const DelayBreakdown& d,
                           const char* indent) {
  os << indent << "pacing=" << d.pacing_ns
     << " vswitch_clamp=" << d.vswitch_ns << " rto=" << d.rto_ns << "\n"
     << indent << "queueing=" << d.queueing_ns
     << " serialization=" << d.serialization_ns
     << " propagation=" << d.propagation_ns << " other=" << d.other_ns
     << "\n";
}

void append_breakdown_json(std::ostringstream& os, const DelayBreakdown& d) {
  os << "{\"pacing_ns\":" << d.pacing_ns
     << ",\"vswitch_ns\":" << d.vswitch_ns << ",\"rto_ns\":" << d.rto_ns
     << ",\"queueing_ns\":" << d.queueing_ns
     << ",\"serialization_ns\":" << d.serialization_ns
     << ",\"propagation_ns\":" << d.propagation_ns
     << ",\"other_ns\":" << d.other_ns << ",\"total_ns\":" << d.total_ns()
     << "}";
}

template <typename Fn>
bool write_file(const std::string& path, Fn&& fn) {
  std::ofstream os(path, std::ios::trunc);
  if (!os.is_open()) return false;
  os << fn();
  return os.good();
}

}  // namespace

std::string render_text(const Report& report, const RenderOptions& opts) {
  std::ostringstream os;
  os << "latency forensics report\n"
     << "  events consumed: " << report.events_consumed << "\n"
     << "  packets: delivered=" << report.packets_delivered
     << " dropped=" << report.packets_dropped
     << " outstanding=" << report.packets_outstanding << "\n"
     << "  measured total (ns): " << report.measured_total_ns << "\n"
     << "  attribution totals (ns):\n";
  append_breakdown_text(os, report.totals, "    ");

  for (const FlowSummary& f : report.flows) {
    os << "flow " << f.flow << "\n"
       << "  delivered=" << f.packets_delivered
       << " retransmissions=" << f.retransmissions << " drops=" << f.drops
       << " rwnd_clamps=" << f.rwnd_clamps << "\n";
    if (f.packets_delivered > 0) {
      os << "  latency (ns): total=" << f.measured_total_ns
         << " mean=" << f.measured_total_ns / f.packets_delivered
         << " min=" << f.min_latency_ns << " max=" << f.max_latency_ns
         << "\n"
         << "  attribution (ns):\n";
      append_breakdown_text(os, f.totals, "    ");
    }
  }

  if (opts.include_packets) {
    os << "packets (uid flow origin_ns measured_ns pacing vswitch rto "
          "queueing serialization propagation other flags)\n";
    for (const PacketTrace& pt : report.packets) {
      os << "  " << pt.uid << " " << pt.flow << " " << pt.origin_t << " "
         << pt.measured_ns() << " " << pt.delay.pacing_ns << " "
         << pt.delay.vswitch_ns << " " << pt.delay.rto_ns << " "
         << pt.delay.queueing_ns << " " << pt.delay.serialization_ns << " "
         << pt.delay.propagation_ns << " " << pt.delay.other_ns << " ";
      if (pt.dropped) os << "dropped";
      if (pt.retransmission) os << (pt.rto ? "retx-rto" : "retx-fast");
      if (!pt.dropped && !pt.retransmission) os << "-";
      os << "\n";
    }
  }
  return os.str();
}

std::string render_json(const Report& report) {
  std::ostringstream os;
  os << "{\"events_consumed\":" << report.events_consumed
     << ",\"packets_delivered\":" << report.packets_delivered
     << ",\"packets_dropped\":" << report.packets_dropped
     << ",\"packets_outstanding\":" << report.packets_outstanding
     << ",\"measured_total_ns\":" << report.measured_total_ns
     << ",\"totals\":";
  append_breakdown_json(os, report.totals);
  os << ",\"flows\":[";
  bool first = true;
  for (const FlowSummary& f : report.flows) {
    os << (first ? "" : ",") << "{\"flow\":\"" << f.flow
       << "\",\"delivered\":" << f.packets_delivered
       << ",\"retransmissions\":" << f.retransmissions
       << ",\"drops\":" << f.drops << ",\"rwnd_clamps\":" << f.rwnd_clamps
       << ",\"measured_total_ns\":" << f.measured_total_ns
       << ",\"min_latency_ns\":" << f.min_latency_ns
       << ",\"max_latency_ns\":" << f.max_latency_ns << ",\"totals\":";
    append_breakdown_json(os, f.totals);
    os << "}";
    first = false;
  }
  os << "]}\n";
  return os.str();
}

std::string render_csv(const Report& report) {
  std::ostringstream os;
  os << "flow,delivered,retransmissions,drops,rwnd_clamps,"
        "measured_total_ns,min_latency_ns,max_latency_ns,pacing_ns,"
        "vswitch_ns,rto_ns,queueing_ns,serialization_ns,propagation_ns,"
        "other_ns\n";
  for (const FlowSummary& f : report.flows) {
    os << f.flow << ',' << f.packets_delivered << ',' << f.retransmissions
       << ',' << f.drops << ',' << f.rwnd_clamps << ','
       << f.measured_total_ns << ',' << f.min_latency_ns << ','
       << f.max_latency_ns << ',' << f.totals.pacing_ns << ','
       << f.totals.vswitch_ns << ',' << f.totals.rto_ns << ','
       << f.totals.queueing_ns << ',' << f.totals.serialization_ns << ','
       << f.totals.propagation_ns << ',' << f.totals.other_ns << '\n';
  }
  return os.str();
}

bool write_text_file(const Report& report, const std::string& path,
                     const RenderOptions& opts) {
  return write_file(path, [&] { return render_text(report, opts); });
}

bool write_json_file(const Report& report, const std::string& path) {
  return write_file(path, [&] { return render_json(report); });
}

bool write_csv_file(const Report& report, const std::string& path) {
  return write_file(path, [&] { return render_csv(report); });
}

}  // namespace acdc::forensics
