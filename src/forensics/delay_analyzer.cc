#include "forensics/delay_analyzer.h"

#include <algorithm>
#include <map>

#include "obs/export.h"

namespace acdc::forensics {

DelayBreakdown& DelayBreakdown::operator+=(const DelayBreakdown& o) {
  pacing_ns += o.pacing_ns;
  vswitch_ns += o.vswitch_ns;
  rto_ns += o.rto_ns;
  queueing_ns += o.queueing_ns;
  serialization_ns += o.serialization_ns;
  propagation_ns += o.propagation_ns;
  other_ns += o.other_ns;
  return *this;
}

void DelayAnalyzer::consume(const obs::TraceEvent& ev) {
  ++events_;
  switch (ev.type) {
    case obs::EventType::kPktOrigin: {
      const auto uid = static_cast<std::uint64_t>(ev.a);
      PacketTrace& pt = packets_[uid];
      pt.uid = uid;
      pt.flow = obs::flow_to_string(ev);
      pt.origin_t = ev.t;
      pt.payload_bytes = ev.b;
      // The stack flushes any accumulated send-stall immediately before
      // the origin it delayed, on the same flow.
      auto it = stalls_.find(pt.flow);
      if (it != stalls_.end()) {
        pt.delay.pacing_ns += it->second.pacing_ns;
        pt.delay.vswitch_ns += it->second.vswitch_ns;
        stalls_.erase(it);
      }
      break;
    }
    case obs::EventType::kTcpSendStall: {
      PendingStall& s = stalls_[obs::flow_to_string(ev)];
      if (ev.b == static_cast<std::int64_t>(obs::StallCause::kRwnd)) {
        s.vswitch_ns += ev.a;  // AC/DC's enforcement channel
      } else {
        s.pacing_ns += ev.a;  // cwnd or TX-gate (TSQ)
      }
      break;
    }
    case obs::EventType::kPktRetx: {
      auto it = packets_.find(static_cast<std::uint64_t>(ev.a));
      if (it != packets_.end()) {
        it->second.retransmission = true;
        if (ev.x != 0.0) it->second.rto = true;
        it->second.delay.rto_ns += ev.b;
      }
      break;
    }
    case obs::EventType::kPktTxStart: {
      const auto uid = static_cast<std::uint64_t>(ev.a);
      auto pkt = packets_.find(uid);
      if (pkt == packets_.end()) {
        tx_end_.erase(uid);
        break;
      }
      HopTiming hop;
      hop.source = ev.source;
      hop.queue_ns = static_cast<std::int64_t>(ev.x);
      hop.serialization_ns = ev.b;
      // Propagation is derived, not carried: this hop's arrival (tx-start
      // minus its queue wait) closes the wire segment the previous hop's
      // serialization end opened.
      auto prev = tx_end_.find(uid);
      if (prev != tx_end_.end() && !pkt->second.hops.empty()) {
        const std::int64_t prop = (ev.t - hop.queue_ns) - prev->second;
        pkt->second.hops.back().propagation_ns = prop;
        pkt->second.delay.propagation_ns += prop;
      }
      pkt->second.delay.queueing_ns += hop.queue_ns;
      pkt->second.delay.serialization_ns += hop.serialization_ns;
      pkt->second.hops.push_back(hop);
      tx_end_[uid] = ev.t + ev.b;
      break;
    }
    case obs::EventType::kPktDrop: {
      const auto uid = static_cast<std::uint64_t>(ev.a);
      auto it = packets_.find(uid);
      if (it != packets_.end()) it->second.dropped = true;
      tx_end_.erase(uid);
      break;
    }
    case obs::EventType::kPktDeliver: {
      const auto uid = static_cast<std::uint64_t>(ev.a);
      auto it = packets_.find(uid);
      if (it != packets_.end()) {
        it->second.delivered = true;
        it->second.deliver_t = ev.t;
        // Close the last wire segment: delivery happens when the final
        // hop's serialization end plus its link delay elapses.
        auto prev = tx_end_.find(uid);
        if (prev != tx_end_.end() && !it->second.hops.empty()) {
          const std::int64_t prop = ev.t - prev->second;
          it->second.hops.back().propagation_ns = prop;
          it->second.delay.propagation_ns += prop;
        }
      }
      tx_end_.erase(uid);
      break;
    }
    case obs::EventType::kRwndClamped:
      ++clamps_[obs::flow_to_string(ev)];
      break;
    default:
      break;
  }
}

Report DelayAnalyzer::report() const {
  Report rep;
  rep.events_consumed = events_;

  rep.packets.reserve(packets_.size());
  for (const auto& [uid, pt] : packets_) {
    if (pt.delivered) {
      PacketTrace finished = pt;
      // Fold whatever the hop taps did not account for into the residual;
      // on a clean fabric this is exactly zero.
      const std::int64_t network = finished.deliver_t - finished.origin_t;
      finished.delay.other_ns =
          network - (finished.delay.queueing_ns +
                     finished.delay.serialization_ns +
                     finished.delay.propagation_ns);
      rep.packets.push_back(std::move(finished));
    } else if (pt.dropped) {
      rep.packets.push_back(pt);
    } else {
      ++rep.packets_outstanding;
    }
  }
  std::sort(rep.packets.begin(), rep.packets.end(),
            [](const PacketTrace& a, const PacketTrace& b) {
              if (a.origin_t != b.origin_t) return a.origin_t < b.origin_t;
              return a.uid < b.uid;
            });

  std::map<std::string, FlowSummary> flows;
  for (const PacketTrace& pt : rep.packets) {
    FlowSummary& f = flows[pt.flow];
    f.flow = pt.flow;
    if (pt.retransmission) ++f.retransmissions;
    if (pt.dropped) {
      ++f.drops;
      ++rep.packets_dropped;
      continue;
    }
    ++rep.packets_delivered;
    ++f.packets_delivered;
    const std::int64_t measured = pt.measured_ns();
    f.measured_total_ns += measured;
    rep.measured_total_ns += measured;
    if (f.packets_delivered == 1 || measured < f.min_latency_ns) {
      f.min_latency_ns = measured;
    }
    if (measured > f.max_latency_ns) f.max_latency_ns = measured;
    f.totals += pt.delay;
    rep.totals += pt.delay;
  }
  for (const auto& [flow, count] : clamps_) {
    FlowSummary& f = flows[flow];
    f.flow = flow;
    f.rwnd_clamps = count;
  }
  rep.flows.reserve(flows.size());
  for (auto& [flow, summary] : flows) rep.flows.push_back(std::move(summary));
  return rep;
}

Report DelayAnalyzer::analyze(const obs::MergedTrace& trace) {
  DelayAnalyzer analyzer;
  trace.for_each(
      [&](const obs::TraceEvent& ev) { analyzer.consume(ev); });
  return analyzer.report();
}

}  // namespace acdc::forensics
