// Open-loop flow-churn workload engine: millions of short transfers with
// the full SYN → data → FIN (or RST) lifecycle, arriving faster or slower
// than the fabric drains them — the regime the paper's fixed-flow
// evaluation never enters, and the one that exercises flow-table GC,
// cap-eviction and host connection teardown (§3.1/§4).
//
// A ChurnSource drives one sender→receiver host pair from its own RNG
// substream, with timers bound to the *sender's* simulator so a source is
// parallel-shard safe by construction: every sender-side callback touches
// only sender-shard state, and the receiver side is wired once at setup
// through the receiver host's own listener (accepted connections close on
// peer FIN and release themselves — receiver-shard state only).
//
// Arrival processes:
//   kPoisson     exponential inter-arrival gaps at flows_per_sec
//   kBurstyOnOff exponential on/off phases; arrivals only during "on", at
//                flows_per_sec * burst_factor
//   kReplay      a pre-materialised plan of (time, bytes, abort) items —
//                either supplied verbatim (ChurnConfig::replay) or built
//                from a seed with make_churn_plan(); the same plan replays
//                bit-identically on any engine/thread configuration
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "host/host.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "workload/distributions.h"

namespace acdc::workload {

enum class ArrivalKind { kPoisson, kBurstyOnOff, kReplay };

// One planned arrival: a flow of `bytes` at time `at` (relative to the
// source's start time); abort_flow tears it down with a RST mid-transfer
// instead of a FIN handshake.
struct ChurnPlanItem {
  sim::Time at = 0;
  std::int64_t bytes = 0;
  bool abort_flow = false;
};

struct ChurnConfig {
  ArrivalKind arrival = ArrivalKind::kPoisson;
  // Mean arrival rate per source (kPoisson; base rate for kBurstyOnOff).
  double flows_per_sec = 1000.0;
  // kBurstyOnOff: exponential on/off phase durations; during "on" the
  // arrival rate is flows_per_sec * burst_factor, during "off" it is zero.
  sim::Time burst_on_mean = sim::milliseconds(10);
  sim::Time burst_off_mean = sim::milliseconds(40);
  double burst_factor = 4.0;
  // Flow sizes: drawn from `sizes` when set (clamped to max_flow_bytes so a
  // heavy-tail draw cannot turn a churn flow into an elephant), otherwise a
  // fixed message_bytes.
  const EmpiricalSizeDistribution* sizes = nullptr;
  std::int64_t message_bytes = 10'000;
  std::int64_t max_flow_bytes = 1'000'000;
  // Fraction of flows torn down by RST at a uniformly-drawn point of the
  // transfer instead of completing the FIN handshake.
  double abort_probability = 0.0;
  // Hold the connection open this long after the last byte is acked before
  // sending FIN. The cheap way to push concurrent-flow counts far above
  // what the fabric's bandwidth alone would sustain.
  sim::Time linger = 0;
  // No new arrivals at or after this source-relative time (kNoTime = run
  // until the simulation stops; in-flight flows always finish naturally).
  sim::Time stop_after = sim::kNoTime;
  // Arrivals beyond this many live flows on one source are counted as
  // skipped instead of launched (0 = unbounded). Bounds sender memory when
  // the fabric cannot keep up with the offered load.
  std::int64_t max_concurrent_per_source = 0;
  // kReplay: the plan to execute. Ignored for the open-ended kinds.
  std::vector<ChurnPlanItem> replay;
};

struct ChurnStats {
  std::int64_t started = 0;    // connections launched
  std::int64_t completed = 0;  // full SYN -> data -> FIN -> kDone lifecycle
  std::int64_t aborted = 0;    // RST teardown (requested aborts)
  std::int64_t skipped = 0;    // arrivals dropped at max_concurrent
  std::int64_t acked_bytes = 0;  // payload acked across finished flows
  std::int64_t concurrent = 0;   // live flows right now
  std::int64_t peak_concurrent = 0;

  ChurnStats& operator+=(const ChurnStats& o) {
    started += o.started;
    completed += o.completed;
    aborted += o.aborted;
    skipped += o.skipped;
    acked_bytes += o.acked_bytes;
    concurrent += o.concurrent;
    peak_concurrent += o.peak_concurrent;
    return *this;
  }
};

// Materialises a Poisson plan with `cfg`'s rate/size/abort draws over
// [0, horizon). Feed the result to ChurnConfig::replay (arrival = kReplay)
// for a workload that is bit-identical regardless of when other RNG
// consumers interleave.
std::vector<ChurnPlanItem> make_churn_plan(sim::Rng rng,
                                           const ChurnConfig& cfg,
                                           sim::Time horizon);

class ChurnSource {
 public:
  // `sim` must be the simulator that owns `sender`'s events (the sender's
  // shard). The receiver's listener for `port` is installed here, before
  // any run, so no cross-shard mutation happens at run time.
  ChurnSource(sim::Simulator* sim, host::Host* sender, host::Host* receiver,
              net::TcpPort port, tcp::TcpConfig tcp_config, ChurnConfig config,
              sim::Rng rng, sim::Time start);

  ChurnSource(const ChurnSource&) = delete;
  ChurnSource& operator=(const ChurnSource&) = delete;
  ~ChurnSource();

  const ChurnStats& stats() const { return stats_; }
  const ChurnConfig& config() const { return config_; }
  host::Host* sender() const { return sender_; }

 private:
  struct Flow {
    std::int64_t bytes = 0;
    std::int64_t abort_at = -1;  // acked-byte threshold; -1 = clean FIN
    bool data_done = false;
  };

  void start();
  void arm_arrival();
  void on_arrival();
  void flip_phase();
  void replay_next();
  void launch(std::int64_t bytes, bool abort_flow);
  void finish(tcp::TcpConnection* conn);
  std::int64_t draw_bytes();
  bool stopped() const;

  sim::Simulator* sim_;
  host::Host* sender_;
  host::Host* receiver_;
  net::TcpPort port_;
  tcp::TcpConfig tcp_config_;
  ChurnConfig config_;
  sim::Rng rng_;
  sim::Time start_;
  sim::Time mean_gap_ = 0;       // Poisson / bursty-on inter-arrival mean
  bool burst_on_ = true;
  bool arrival_armed_ = false;
  std::size_t replay_index_ = 0;
  std::unordered_map<tcp::TcpConnection*, Flow> flows_;
  ChurnStats stats_;
};

// A bag of ChurnSources plus aggregate accounting. Owned by the Scenario
// (add_churn_workload) or constructed directly in benches.
class ChurnEngine {
 public:
  ChurnSource* add_source(sim::Simulator* sim, host::Host* sender,
                          host::Host* receiver, net::TcpPort port,
                          const tcp::TcpConfig& tcp_config,
                          const ChurnConfig& config, sim::Rng rng,
                          sim::Time start);

  // Aggregate over all sources. Safe to call whenever no simulator is
  // actively running (sources on different shards mutate only their own
  // stats during a run).
  ChurnStats stats() const;

  const std::vector<std::unique_ptr<ChurnSource>>& sources() const {
    return sources_;
  }

 private:
  std::vector<std::unique_ptr<ChurnSource>> sources_;
};

}  // namespace acdc::workload
