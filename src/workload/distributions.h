// Empirical flow-size distributions for the trace-driven workloads (§5.2):
// the DCTCP web-search workload [3] and the VL2 data-mining workload [25],
// whose flow-size distribution has a heavier tail. Sizes are sampled from
// the published CDFs with log-linear interpolation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace acdc::workload {

class EmpiricalSizeDistribution {
 public:
  struct Point {
    std::int64_t bytes;
    double cdf;  // cumulative probability, strictly increasing to 1.0
  };

  EmpiricalSizeDistribution(std::string name, std::vector<Point> points);

  std::int64_t sample(sim::Rng& rng) const;

  // Inverse CDF at probability u in [0, 1].
  std::int64_t quantile(double u) const;

  double mean_bytes() const;
  const std::string& name() const { return name_; }
  const std::vector<Point>& points() const { return points_; }

 private:
  std::string name_;
  std::vector<Point> points_;
};

// Web-search workload (DCTCP paper): mixed mice/elephants, median ~tens of
// KB, tail to tens of MB.
const EmpiricalSizeDistribution& web_search_distribution();

// Data-mining workload (VL2): ~80% of flows under 10KB but a much heavier
// byte tail. The extreme (>30MB) tail is truncated to keep simulated runs
// tractable; the paper's Fig. 23 reports mice (<10KB) FCTs, which the
// truncation does not affect qualitatively (see DESIGN.md).
const EmpiricalSizeDistribution& data_mining_distribution();

}  // namespace acdc::workload
