#include "workload/churn.h"

#include <algorithm>
#include <cassert>

namespace acdc::workload {

std::vector<ChurnPlanItem> make_churn_plan(sim::Rng rng,
                                           const ChurnConfig& cfg,
                                           sim::Time horizon) {
  // Same draw order as the live Poisson source (gap, bytes, abort) so a
  // plan built from a seed matches what that seed would generate online.
  std::vector<ChurnPlanItem> plan;
  const sim::Time mean_gap = sim::seconds(1.0 / cfg.flows_per_sec);
  sim::Time t = 0;
  for (;;) {
    t += rng.exponential_gap(mean_gap);
    if (t >= horizon) break;
    ChurnPlanItem item;
    item.at = t;
    item.bytes = cfg.sizes != nullptr
                     ? std::clamp<std::int64_t>(cfg.sizes->sample(rng), 1,
                                                cfg.max_flow_bytes)
                     : cfg.message_bytes;
    item.abort_flow = rng.chance(cfg.abort_probability);
    plan.push_back(item);
  }
  return plan;
}

ChurnSource::ChurnSource(sim::Simulator* sim, host::Host* sender,
                         host::Host* receiver, net::TcpPort port,
                         tcp::TcpConfig tcp_config, ChurnConfig config,
                         sim::Rng rng, sim::Time start)
    : sim_(sim),
      sender_(sender),
      receiver_(receiver),
      port_(port),
      tcp_config_(tcp_config),
      config_(std::move(config)),
      rng_(rng),
      start_(start) {
  const double rate = config_.arrival == ArrivalKind::kBurstyOnOff
                          ? config_.flows_per_sec * config_.burst_factor
                          : config_.flows_per_sec;
  assert(rate > 0.0);
  mean_gap_ = sim::seconds(1.0 / rate);
  // Receiver side, wired once before any run: accepted connections answer
  // the client's FIN with their own and release themselves on kDone. Both
  // callbacks touch only receiver-host state, so this stays correct when
  // sender and receiver live on different shards.
  host::Host* rcv = receiver_;
  receiver_->listen(port_, tcp_config_, [rcv](tcp::TcpConnection* conn) {
    conn->on_peer_fin = [conn] { conn->close(); };
    conn->on_closed = [rcv, conn] { rcv->release_connection(conn); };
  });
  sim_->schedule_at(start_, [this] { this->start(); });
}

ChurnSource::~ChurnSource() = default;

bool ChurnSource::stopped() const {
  return config_.stop_after != sim::kNoTime &&
         sim_->now() - start_ >= config_.stop_after;
}

void ChurnSource::start() {
  switch (config_.arrival) {
    case ArrivalKind::kPoisson:
      arm_arrival();
      break;
    case ArrivalKind::kBurstyOnOff:
      burst_on_ = true;
      arm_arrival();
      sim_->schedule(rng_.exponential_gap(config_.burst_on_mean),
                     [this] { flip_phase(); });
      break;
    case ArrivalKind::kReplay:
      replay_next();
      break;
  }
}

void ChurnSource::arm_arrival() {
  if (arrival_armed_ || stopped()) return;
  arrival_armed_ = true;
  sim_->schedule(rng_.exponential_gap(mean_gap_), [this] { on_arrival(); });
}

void ChurnSource::on_arrival() {
  arrival_armed_ = false;
  if (stopped()) return;
  // A straggler fired after the burst phase flipped off: swallow it; the
  // next on-phase re-arms.
  if (config_.arrival == ArrivalKind::kBurstyOnOff && !burst_on_) return;
  const std::int64_t bytes = draw_bytes();
  const bool abort_flow = rng_.chance(config_.abort_probability);
  launch(bytes, abort_flow);
  arm_arrival();
}

void ChurnSource::flip_phase() {
  if (stopped()) return;
  burst_on_ = !burst_on_;
  sim_->schedule(rng_.exponential_gap(burst_on_ ? config_.burst_on_mean
                                                : config_.burst_off_mean),
                 [this] { flip_phase(); });
  if (burst_on_) arm_arrival();
}

void ChurnSource::replay_next() {
  if (replay_index_ >= config_.replay.size()) return;
  const ChurnPlanItem& item = config_.replay[replay_index_++];
  const sim::Time at = std::max(start_ + item.at, sim_->now());
  sim_->schedule_at(at, [this, &item] {
    launch(item.bytes, item.abort_flow);
    replay_next();
  });
}

std::int64_t ChurnSource::draw_bytes() {
  if (config_.sizes == nullptr) return config_.message_bytes;
  return std::clamp<std::int64_t>(config_.sizes->sample(rng_), 1,
                                  config_.max_flow_bytes);
}

void ChurnSource::launch(std::int64_t bytes, bool abort_flow) {
  if (config_.max_concurrent_per_source > 0 &&
      stats_.concurrent >= config_.max_concurrent_per_source) {
    ++stats_.skipped;
    return;
  }
  tcp::TcpConnection* conn =
      sender_->connect(receiver_->ip(), port_, tcp_config_);
  ++stats_.started;
  ++stats_.concurrent;
  stats_.peak_concurrent = std::max(stats_.peak_concurrent, stats_.concurrent);

  Flow& f = flows_[conn];
  f.bytes = std::max<std::int64_t>(bytes, 1);
  if (abort_flow) {
    f.abort_at = rng_.uniform_int(0, f.bytes);
  }

  conn->on_established = [this, conn] {
    auto it = flows_.find(conn);
    if (it == flows_.end()) return;
    if (it->second.abort_at == 0) {
      conn->abort();  // fires on_closed -> finish()
      return;
    }
    conn->send(it->second.bytes);
  };
  conn->on_acked = [this, conn](std::int64_t cum) {
    auto it = flows_.find(conn);
    if (it == flows_.end() || it->second.data_done) return;
    Flow& flow = it->second;
    if (flow.abort_at >= 0 && cum >= flow.abort_at) {
      flow.data_done = true;
      conn->abort();  // fires on_closed -> finish()
      return;
    }
    if (cum >= flow.bytes) {
      flow.data_done = true;
      if (config_.linger > 0) {
        sim_->schedule(config_.linger, [this, conn] {
          if (flows_.find(conn) != flows_.end()) conn->close();
        });
      } else {
        conn->close();
      }
    }
  };
  conn->on_closed = [this, conn] { finish(conn); };
}

void ChurnSource::finish(tcp::TcpConnection* conn) {
  auto it = flows_.find(conn);
  if (it == flows_.end()) return;
  if (it->second.abort_at >= 0) {
    ++stats_.aborted;
  } else {
    ++stats_.completed;
  }
  stats_.acked_bytes += conn->acked_payload_bytes();
  --stats_.concurrent;
  flows_.erase(it);
  sender_->release_connection(conn);
}

ChurnSource* ChurnEngine::add_source(sim::Simulator* sim, host::Host* sender,
                                     host::Host* receiver, net::TcpPort port,
                                     const tcp::TcpConfig& tcp_config,
                                     const ChurnConfig& config, sim::Rng rng,
                                     sim::Time start) {
  sources_.push_back(std::make_unique<ChurnSource>(
      sim, sender, receiver, port, tcp_config, config, rng, start));
  return sources_.back().get();
}

ChurnStats ChurnEngine::stats() const {
  ChurnStats total;
  for (const auto& src : sources_) total += src->stats();
  return total;
}

}  // namespace acdc::workload
