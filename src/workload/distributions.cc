#include "workload/distributions.h"

#include <cassert>
#include <cmath>

namespace acdc::workload {

EmpiricalSizeDistribution::EmpiricalSizeDistribution(std::string name,
                                                     std::vector<Point> points)
    : name_(std::move(name)), points_(std::move(points)) {
  assert(!points_.empty());
  assert(points_.back().cdf == 1.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    assert(points_[i].cdf > points_[i - 1].cdf);
    assert(points_[i].bytes >= points_[i - 1].bytes);
  }
}

std::int64_t EmpiricalSizeDistribution::quantile(double u) const {
  if (u <= points_.front().cdf) return points_.front().bytes;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (u <= points_[i].cdf) {
      const Point& a = points_[i - 1];
      const Point& b = points_[i];
      const double frac = (u - a.cdf) / (b.cdf - a.cdf);
      // Log-linear interpolation over sizes (they span many decades).
      const double la = std::log(static_cast<double>(a.bytes));
      const double lb = std::log(static_cast<double>(b.bytes));
      return static_cast<std::int64_t>(std::exp(la + frac * (lb - la)));
    }
  }
  return points_.back().bytes;
}

std::int64_t EmpiricalSizeDistribution::sample(sim::Rng& rng) const {
  return quantile(rng.uniform_real(0.0, 1.0));
}

double EmpiricalSizeDistribution::mean_bytes() const {
  // Numeric integration of the inverse CDF.
  constexpr int kSteps = 10'000;
  double acc = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    const double u = (i + 0.5) / kSteps;
    acc += static_cast<double>(quantile(u));
  }
  return acc / kSteps;
}

const EmpiricalSizeDistribution& web_search_distribution() {
  static const EmpiricalSizeDistribution dist(
      "web-search",
      {
          {6'000, 0.15},
          {13'000, 0.20},
          {19'000, 0.30},
          {33'000, 0.40},
          {53'000, 0.53},
          {133'000, 0.60},
          {667'000, 0.70},
          {1'467'000, 0.80},
          {3'333'000, 0.90},
          {6'667'000, 0.97},
          {20'000'000, 1.00},
      });
  return dist;
}

const EmpiricalSizeDistribution& data_mining_distribution() {
  static const EmpiricalSizeDistribution dist(
      "data-mining",
      {
          {100, 0.10},
          {180, 0.20},
          {250, 0.30},
          {560, 0.40},
          {900, 0.50},
          {1'100, 0.60},
          {2'000, 0.70},
          {10'000, 0.80},
          {100'000, 0.90},
          {1'000'000, 0.95},
          {10'000'000, 0.98},
          {30'000'000, 1.00},  // truncated heavy tail (see header)
      });
  return dist;
}

}  // namespace acdc::workload
