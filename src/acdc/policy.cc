#include "acdc/policy.h"

namespace acdc::vswitch {

const char* to_string(VccKind kind) {
  switch (kind) {
    case VccKind::kDctcp:
      return "dctcp";
    case VccKind::kReno:
      return "reno";
    case VccKind::kCubic:
      return "cubic";
    case VccKind::kPowerTcp:
      return "powertcp";
    case VccKind::kFairRate:
      return "fairrate";
  }
  return "?";
}

void PolicyEngine::add_dst_subnet_rule(net::IpAddr prefix, net::IpAddr mask,
                                       const FlowPolicy& policy) {
  Rule r;
  r.match_subnet = true;
  r.prefix = prefix & mask;
  r.mask = mask;
  r.policy = policy;
  rules_.push_back(r);
}

void PolicyEngine::add_dst_port_rule(net::TcpPort port,
                                     const FlowPolicy& policy) {
  Rule r;
  r.match_port = true;
  r.port = port;
  r.policy = policy;
  rules_.push_back(r);
}

FlowPolicy PolicyEngine::lookup(const FlowKey& key) const {
  for (const Rule& r : rules_) {
    if (r.match_subnet && (key.dst_ip & r.mask) == r.prefix) return r.policy;
    if (r.match_port && key.dst_port == r.port) return r.policy;
  }
  return default_;
}

}  // namespace acdc::vswitch
