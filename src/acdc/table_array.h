// Zero-initialized raw storage for one slot-indexed FlowTable lane.
//
// Two properties the per-packet path depends on (DESIGN.md §14):
//
//  * Raw memory, not constructed objects. The table placement-news a record
//    into a slot on occupy/rehash before its first read, so allocating a
//    lane never sweeps a constructor over millions of slots and untouched
//    tail pages are never faulted. Zero bytes are the "vacant" encoding the
//    probe/deref paths rely on (FlowHot::gen == 0).
//
//  * Huge pages when it matters. Lanes of 2 MB and up come straight from
//    anonymous mmap with MADV_HUGEPAGE: at 1M+ slots the hot lane spans
//    hundreds of MB, and with 4 KB pages nearly every random lookup pays a
//    TLB miss on top of the DRAM line — worse, x86 silently drops a
//    software prefetch whose translation misses the TLB, which defeats the
//    burst path's prefetch pass exactly at the occupancies it exists for.
//    2 MB pages put the whole table back inside the STLB. Smaller lanes
//    (and non-Linux builds) fall back to aligned heap memory.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace acdc::vswitch {

template <typename T>
class TableArray {
  static_assert(std::is_trivially_destructible_v<T>,
                "lanes are reclaimed without destructor sweeps");

 public:
  TableArray() = default;

  explicit TableArray(std::size_t count) {
    if (count == 0) return;
    bytes_ = count * sizeof(T);
#if defined(__linux__)
    if (bytes_ >= kHugePageBytes) {
      bytes_ = (bytes_ + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
      void* p = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (p != MAP_FAILED) {
#if defined(MADV_HUGEPAGE)
        ::madvise(p, bytes_, MADV_HUGEPAGE);
#endif
        data_ = static_cast<T*>(p);
        mapped_ = true;
        return;
      }
      // Fall through to the heap on mmap failure.
    }
#endif
    constexpr std::size_t kAlign =
        alignof(T) > alignof(std::max_align_t) ? alignof(T)
                                               : alignof(std::max_align_t);
    bytes_ = (bytes_ + kAlign - 1) & ~(kAlign - 1);
    void* p = std::aligned_alloc(kAlign, bytes_);
    if (p == nullptr) throw std::bad_alloc{};
    std::memset(p, 0, bytes_);
    data_ = static_cast<T*>(p);
  }

  TableArray(TableArray&& other) noexcept { swap(other); }
  TableArray& operator=(TableArray&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  TableArray(const TableArray&) = delete;
  TableArray& operator=(const TableArray&) = delete;
  ~TableArray() { release(); }

  // Shallow const, like unique_ptr<T[]>: the lane is the table's storage,
  // not part of its logical state.
  T& operator[](std::size_t i) const { return data_[i]; }
  T* data() const { return data_; }

 private:
  static constexpr std::size_t kHugePageBytes = std::size_t{2} << 20;

  void release() noexcept {
    if (data_ == nullptr) return;
#if defined(__linux__)
    if (mapped_) {
      ::munmap(data_, bytes_);
    } else {
      std::free(data_);
    }
#else
    std::free(data_);
#endif
    data_ = nullptr;
    bytes_ = 0;
    mapped_ = false;
  }

  void swap(TableArray& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(bytes_, other.bytes_);
    std::swap(mapped_, other.mapped_);
  }

  T* data_ = nullptr;
  std::size_t bytes_ = 0;
  bool mapped_ = false;
};

}  // namespace acdc::vswitch
