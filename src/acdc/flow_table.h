// The vSwitch flow table (§4): hash table keyed on the 5-tuple, entries
// created on SYN (or lazily on first packet for mid-flow adoption), removed
// by FIN plus a coarse-grained garbage collector. The paper uses RCU hash
// tables with per-entry spinlocks to make reader-dominated access cheap;
// the simulator is single-threaded, so this class keeps the same
// lookup-dominated interface without the synchronisation.
//
// Memory bound: the table can be capped (set_limit). At the cap a new flow
// either evicts the oldest-idle entry (kEvictOldest, the default — the
// entry at the head of the intrusive LRU list, which touch() keeps ordered
// by last_activity) or is refused admission (kReject), leaving that flow
// unmanaged. Both paths are counted so operators can see cap pressure.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "acdc/flow_state.h"
#include "sim/time.h"

namespace acdc::vswitch {

class FlowTable {
 public:
  struct Stats {
    std::int64_t lookups = 0;
    std::int64_t hits = 0;
    std::int64_t inserts = 0;
    std::int64_t removals = 0;
    std::int64_t gc_removed = 0;
    std::int64_t evictions = 0;          // cap-pressure removals (LRU)
    std::int64_t admission_rejects = 0;  // refused inserts (kReject at cap)
  };

  // What happens when an insert would exceed the cap.
  enum class OverflowPolicy {
    kEvictOldest,  // drop the oldest-idle entry to admit the new flow
    kReject,       // refuse the new flow (it passes through unmanaged)
  };

  struct FindResult {
    FlowEntry* entry;  // nullptr = admission rejected (kReject at cap)
    bool created;
  };

  FlowEntry* find(const FlowKey& key);
  // Single-hash lookup-or-insert: one try_emplace probes and reserves the
  // bucket in the same pass (the old find-then-emplace hashed twice on the
  // create path). Returns entry == nullptr only when the table is at its
  // cap under OverflowPolicy::kReject.
  FindResult find_or_create(const FlowKey& key, sim::Time now);
  bool erase(const FlowKey& key);

  // Marks activity on `entry`: stamps last_activity and moves the entry to
  // the most-recently-used end of the eviction order. The datapath calls
  // this on every packet it attributes to a flow, so LRU order == idle
  // order and evicting the list head removes the oldest-idle entry.
  void touch(FlowEntry& entry, sim::Time now);

  // Bounds the table to `max_entries` (0 = unbounded, the default).
  // Changing the cap never removes existing entries eagerly; enforcement
  // happens on the next insert.
  void set_limit(std::size_t max_entries,
                 OverflowPolicy policy = OverflowPolicy::kEvictOldest);
  std::size_t max_entries() const { return max_entries_; }
  OverflowPolicy overflow_policy() const { return overflow_policy_; }

  // Monotonic membership-change counter: bumped on every insert, erase,
  // eviction and GC sweep that removed something. Starts at 1 so a
  // zero-initialised cache stamp can never match. Entry *pointers* are
  // stable across rehash (values are unique_ptr), so a cached pointer is
  // valid exactly as long as the version it was stamped with — this is what
  // AcdcCore's per-direction lookup caches key on.
  std::uint64_t version() const { return version_; }

  // Removes entries idle for longer than `idle_timeout`, and FIN-marked
  // entries idle for longer than `fin_linger`.
  std::size_t collect_garbage(sim::Time now, sim::Time idle_timeout,
                              sim::Time fin_linger);

  // Oldest-idle entry (head of the LRU order); nullptr when empty.
  const FlowEntry* oldest() const { return lru_head_; }

  std::size_t size() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [key, entry] : entries_) fn(*entry);
  }

 private:
  void lru_unlink(FlowEntry& e);
  void lru_push_back(FlowEntry& e);

  std::unordered_map<FlowKey, std::unique_ptr<FlowEntry>, FlowKeyHash>
      entries_;
  Stats stats_;
  std::uint64_t version_ = 1;
  std::size_t max_entries_ = 0;
  OverflowPolicy overflow_policy_ = OverflowPolicy::kEvictOldest;
  // Intrusive doubly-linked eviction order: head = oldest-idle, tail = most
  // recently touched. Nodes live inside FlowEntry (lru_prev/lru_next), so
  // maintaining the order costs no allocation.
  FlowEntry* lru_head_ = nullptr;
  FlowEntry* lru_tail_ = nullptr;
};

}  // namespace acdc::vswitch
