// The vSwitch flow table (§4): open-addressed hash table keyed on the
// directional 5-tuple, entries created on SYN (or lazily on first packet for
// mid-flow adoption), removed by FIN plus a coarse-grained garbage
// collector. The paper uses RCU hash tables with per-entry spinlocks to make
// reader-dominated access cheap; the simulator is single-threaded, so this
// class keeps the lookup-dominated interface and spends its effort on cache
// lines instead: control bytes (a 7-bit hash tag per slot) resolve most
// probes without touching the key array, and the per-flow state splits into
// a hot record co-located with the probe metadata (one slot = one page
// neighborhood) and a cold record in its own lane (flow_state.h), so a
// packet touches only the lines — and pages — it needs.
//
// Callers never hold raw pointers across datapath calls. A lookup returns a
// FlowRef — slot-stable pointers valid until the next table mutation — and a
// FlowHandle{slot, generation} that can be retained: generations are
// globally unique (a monotonic counter, never reused), so deref() on a
// handle whose flow was erased, evicted, GC'd or relocated — by a rehash,
// or by the backward shift a neighbor's deletion performs — fails a single
// integer compare and the holder re-probes by key. This supersedes the old
// whole-table version counter the AcdcCore direction caches were built on.
//
// Memory bound: the table can be capped (set_limit). At the cap a new flow
// either evicts the oldest-idle entry (kEvictOldest, the default — the head
// of the slot-linked LRU list, which touch() keeps ordered by
// last_activity) or is refused admission (kReject), leaving that flow
// unmanaged. Both paths are counted so operators can see cap pressure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "acdc/flow_state.h"
#include "acdc/table_array.h"
#include "sim/time.h"

namespace acdc::vswitch {

// Generation-checked reference to a flow. gen == 0 never matches a live
// slot, so a default-constructed handle is always invalid.
struct FlowHandle {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;

  bool valid() const { return gen != 0; }
  bool operator==(const FlowHandle&) const = default;
};

// The working unit the datapath passes around: the handle plus direct
// pointers into the table's slot arrays. Pointers stay valid until the next
// insert/erase/GC (a rehash relocates records); re-acquire through deref()
// or a fresh lookup across table mutations.
struct FlowRef {
  FlowHandle handle{};
  const FlowKey* key = nullptr;
  FlowHot* hot = nullptr;
  FlowCold* cold = nullptr;
  bool created = false;

  explicit operator bool() const { return hot != nullptr; }
};

class FlowTable {
 public:
  struct Stats {
    std::int64_t lookups = 0;
    std::int64_t hits = 0;
    std::int64_t inserts = 0;
    std::int64_t removals = 0;
    std::int64_t gc_removed = 0;
    std::int64_t evictions = 0;          // cap-pressure removals (LRU)
    std::int64_t admission_rejects = 0;  // refused inserts (kReject at cap)
    std::int64_t rehashes = 0;           // capacity growth
  };

  // What happens when an insert would exceed the cap.
  enum class OverflowPolicy {
    kEvictOldest,  // drop the oldest-idle entry to admit the new flow
    kReject,       // refuse the new flow (it passes through unmanaged)
  };

  FlowTable() = default;
  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  // Lookup without insertion; a null FlowRef when absent.
  FlowRef find(const FlowKey& key);

  // Lookup-or-insert in one probe sequence. Returns a null FlowRef only
  // when the table is at its cap under OverflowPolicy::kReject.
  FlowRef find_or_create(const FlowKey& key, sim::Time now);

  // Generation check: the live record for `h`, or a null FlowRef when the
  // flow was removed or relocated since the handle was issued. Does not
  // count as a lookup (no probing happens).
  FlowRef deref(FlowHandle h);

  bool erase(const FlowKey& key);

  // Marks activity on the flow: stamps last_activity and moves the slot to
  // the most-recently-used end of the eviction order. The datapath calls
  // this on every packet it attributes to a flow, so LRU order == idle
  // order and evicting the list head removes the oldest-idle entry.
  void touch(const FlowRef& ref, sim::Time now);

  // Two-stage lookup warming for the burst path (DESIGN.md §14). Both are
  // stats-neutral and mutate nothing.
  //
  // Stage 1 (`prefetch_probe`, issued furthest ahead): warms the control
  // bytes at the key's home slot — all an absent-key probe ever reads, and
  // the input the second stage scans. Also the whole warming story for
  // lookups expected to miss (e.g. the reversed key of a piggybacked ACK on
  // a unidirectional flow).
  //
  // Stage 2 (`prefetch`, issued closer in): scans the now-warm control
  // bytes for the key's tag to locate the *probable* slot — following the
  // probe chain the real lookup will walk — and warms the key/generation
  // lane and the hot record there. Resolving the slot first matters: at
  // high occupancy a third of lookups land off their home slot, and lines
  // warmed at the wrong slot hide nothing. A 7-bit tag collision (~1/128
  // per probed slot) warms a wrong line; the lookup still works, it just
  // stalls as if unprefetched.
  void prefetch(const FlowKey& key) const;
  void prefetch_probe(const FlowKey& key) const;

  // Bounds the table to `max_entries` (0 = unbounded, the default).
  // Changing the cap never removes existing entries eagerly; enforcement
  // happens on the next insert.
  void set_limit(std::size_t max_entries,
                 OverflowPolicy policy = OverflowPolicy::kEvictOldest);
  std::size_t max_entries() const { return max_entries_; }
  OverflowPolicy overflow_policy() const { return overflow_policy_; }

  // Removes entries idle for longer than `idle_timeout`, and FIN-marked
  // entries idle for longer than `fin_linger`.
  std::size_t collect_garbage(sim::Time now, sim::Time idle_timeout,
                              sim::Time fin_linger);

  // Oldest-idle entry (head of the LRU order); null when empty.
  FlowRef oldest();

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

  // Visits every live flow in slot order. The callback may mutate flow
  // state but must not insert or erase.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::uint32_t s = 0; s < capacity_; ++s) {
      if (hot_[s].gen != 0) fn(ref_at(s, false));
    }
  }

 private:
  // Control bytes: one per slot. Live slots hold a 7-bit tag (top bits of
  // the key hash), so a probe rejects non-matching slots without loading
  // the 12-byte key. There are no tombstones: deletion back-shifts the
  // probe chain (erase_slot), so an empty byte always terminates a probe.
  static constexpr std::uint8_t kCtrlEmpty = 0x80;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kMinCapacity = 64;

  FlowRef ref_at(std::uint32_t slot, bool created) {
    FlowHot& h = hot_[slot];
    return FlowRef{FlowHandle{slot, h.gen}, &h.key, &h, &cold_[slot],
                   created};
  }

  static std::uint64_t hash_key(const FlowKey& key) {
    return static_cast<std::uint64_t>(FlowKeyHash{}(key));
  }
  static std::uint8_t tag_of(std::uint64_t h) {
    return static_cast<std::uint8_t>(h >> 57) & 0x7F;
  }
  std::uint32_t home_slot(std::uint64_t h) const {
    return static_cast<std::uint32_t>(h) & mask_;
  }

  // Probe for an existing key; kNil when absent.
  std::uint32_t lookup_slot(const FlowKey& key) const;
  // Probe for the insertion slot (the empty slot terminating the key's
  // chain). The key must not be present.
  std::uint32_t insert_slot(const FlowKey& key) const;

  void occupy(std::uint32_t slot, const FlowKey& key, sim::Time now);
  // Removal with backward-shift deletion: entries after the hole whose home
  // slot the hole covers are pulled back, so chains never carry dead slots
  // and an at-cap eviction regime never needs a cleanup rehash.
  void erase_slot(std::uint32_t slot);
  // Relocates a live record (backward shift), re-pointing its LRU
  // neighbors; the generation travels with the record, so handles naming
  // the old slot fail deref() and fall back to a keyed probe.
  void move_slot(std::uint32_t from, std::uint32_t to);
  // Ensures one more insert keeps the live load under 7/8, doubling
  // otherwise.
  void ensure_insert_capacity();
  void reserve_for(std::size_t entries);
  void rehash(std::size_t new_capacity);

  void lru_unlink(std::uint32_t slot);
  void lru_push_back(std::uint32_t slot);

  // Slot storage lives in huge-page-backed raw lanes (table_array.h): at
  // 1M+ slots the hot lane alone spans hundreds of MB, and with 4 KB pages
  // every random lookup costs a TLB miss on top of the DRAM line — which
  // also silently kills the burst path's prefetches (x86 drops a software
  // prefetch whose translation misses the TLB). 2 MB pages put the whole
  // table back inside the STLB; where the kernel can't grant them, the
  // key/generation/LRU embedding in FlowHot (flow_state.h) caps the damage
  // at one walk per lookup.
  TableArray<std::uint8_t> ctrl_;
  TableArray<FlowHot> hot_;
  TableArray<FlowCold> cold_;

  std::uint32_t capacity_ = 0;  // always a power of two (or 0 before first
                                // insert)
  std::uint32_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint32_t lru_head_ = kNil;
  std::uint32_t lru_tail_ = kNil;
  // Monotonic generation source. Never reused, so a stale handle can never
  // alias a later flow in the same slot (or any slot after a rehash). u32
  // wrap needs 4 billion inserts in one vSwitch's lifetime — out of scope
  // for simulated runs; the skip keeps gen 0 meaning "invalid" regardless.
  std::uint32_t next_gen_ = 1;

  Stats stats_;
  std::size_t max_entries_ = 0;
  OverflowPolicy overflow_policy_ = OverflowPolicy::kEvictOldest;
};

}  // namespace acdc::vswitch
