// The vSwitch flow table (§4): hash table keyed on the 5-tuple, entries
// created on SYN (or lazily on first packet for mid-flow adoption), removed
// by FIN plus a coarse-grained garbage collector. The paper uses RCU hash
// tables with per-entry spinlocks to make reader-dominated access cheap;
// the simulator is single-threaded, so this class keeps the same
// lookup-dominated interface without the synchronisation.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "acdc/flow_state.h"
#include "sim/time.h"

namespace acdc::vswitch {

class FlowTable {
 public:
  struct Stats {
    std::int64_t lookups = 0;
    std::int64_t hits = 0;
    std::int64_t inserts = 0;
    std::int64_t removals = 0;
    std::int64_t gc_removed = 0;
  };

  struct FindResult {
    FlowEntry& entry;
    bool created;
  };

  FlowEntry* find(const FlowKey& key);
  // Single-hash lookup-or-insert: one try_emplace probes and reserves the
  // bucket in the same pass (the old find-then-emplace hashed twice on the
  // create path).
  FindResult find_or_create(const FlowKey& key, sim::Time now);
  bool erase(const FlowKey& key);

  // Monotonic membership-change counter: bumped on every insert, erase and
  // GC sweep that removed something. Starts at 1 so a zero-initialised cache
  // stamp can never match. Entry *pointers* are stable across rehash (values
  // are unique_ptr), so a cached pointer is valid exactly as long as the
  // version it was stamped with — this is what AcdcCore's per-direction
  // lookup caches key on.
  std::uint64_t version() const { return version_; }

  // Removes entries idle for longer than `idle_timeout`, and FIN-marked
  // entries idle for longer than `fin_linger`.
  std::size_t collect_garbage(sim::Time now, sim::Time idle_timeout,
                              sim::Time fin_linger);

  std::size_t size() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [key, entry] : entries_) fn(*entry);
  }

 private:
  std::unordered_map<FlowKey, std::unique_ptr<FlowEntry>, FlowKeyHash>
      entries_;
  Stats stats_;
  std::uint64_t version_ = 1;
};

}  // namespace acdc::vswitch
