// The AC/DC receiver module (§3, right side of Fig. 3): on ingress data it
// counts total and CE-marked bytes and strips ECN bits before the VM sees
// them; on egress ACKs it piggy-backs the running totals as a PACK option
// or emits a dedicated FACK when the option would not fit the MTU (§3.2).
#pragma once

#include <functional>

#include "acdc/core.h"
#include "net/packet.h"

namespace acdc::vswitch {

class ReceiverModule {
 public:
  explicit ReceiverModule(AcdcCore& core) : core_(core) {}

  // Ingress packets in the data direction.
  void process_ingress_data(net::Packet& packet);

  // Egress ACKs for data we received. `emit` transmits an extra packet
  // (the FACK) toward the wire.
  void process_egress_ack(net::Packet& ack,
                          const std::function<void(net::PacketPtr)>& emit);

 private:
  AcdcCore& core_;
};

}  // namespace acdc::vswitch
