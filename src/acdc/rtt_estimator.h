// Integer-scaled RFC 6298 RTT estimation for the vSwitch datapath (§3.1:
// AC/DC reconstructs sender variables in the vSwitch; a real per-flow RTT
// estimate replaces the coarse inactivity-scan RTO inference and feeds the
// base-RTT timescale the telemetry-driven virtual CCs need).
//
// Linux-style fixed point: srtt is kept in 1/8 µs units and rttvar in 1/4 µs
// units so the EWMA updates are pure integer shifts — no floating point on
// the per-ACK path. The negative-error branch uses Linux's slow-decrease
// variant: when the new sample is below srtt, the deviation term only decays
// at 1/8 of the usual gain, so one fast ACK after a congestion epoch cannot
// collapse the RTO.
#pragma once

#include <algorithm>
#include <cstdint>

namespace acdc::vswitch {

struct RttEstimator {
  std::uint32_t srtt_x8 = 0;    // smoothed RTT, µs << 3; 0 = no sample yet
  std::uint32_t rttvar_x4 = 0;  // mean deviation, µs << 2
  std::uint32_t min_rtt_us = 0; // per-flow floor (τ for PowerTCP); 0 = none

  bool valid() const { return srtt_x8 != 0; }

  // Smoothed RTT in whole microseconds.
  std::uint32_t srtt_us() const { return srtt_x8 >> 3; }

  // Folds one completed measurement in. Karn's rule is the caller's job:
  // never feed a sample whose segment was retransmitted.
  void on_sample(std::uint32_t rtt_us) {
    if (rtt_us == 0) rtt_us = 1;  // sub-µs fabric RTT still counts
    if (min_rtt_us == 0 || rtt_us < min_rtt_us) min_rtt_us = rtt_us;
    if (!valid()) {
      // First sample: srtt = rtt, rttvar = rtt/2 (RFC 6298 §2.2).
      srtt_x8 = rtt_us << 3;
      rttvar_x4 = rtt_us << 1;
      return;
    }
    // srtt += (rtt - srtt) / 8, carried out in x8 units.
    std::int32_t err = static_cast<std::int32_t>(rtt_us) -
                       static_cast<std::int32_t>(srtt_x8 >> 3);
    srtt_x8 = static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(srtt_x8) + err));
    if (err < 0) {
      err = -err;
      err -= static_cast<std::int32_t>(rttvar_x4 >> 2);
      if (err > 0) err >>= 3;  // slow decrease
    } else {
      err -= static_cast<std::int32_t>(rttvar_x4 >> 2);
    }
    rttvar_x4 = static_cast<std::uint32_t>(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(rttvar_x4) + err));
  }

  // RTO = srtt + 4·rttvar (the x4 scaling makes the +4· a plain add), with
  // the exponential backoff applied as a shift. Clamping to the deployment's
  // [min_rto, max_rto] is the caller's policy.
  std::uint64_t rto_us(unsigned backoff = 0) const {
    std::uint64_t rto = static_cast<std::uint64_t>(srtt_x8 >> 3) + rttvar_x4;
    if (rto == 0) rto = 1;
    return rto << std::min(backoff, 24u);
  }
};

}  // namespace acdc::vswitch
