#include "acdc/receiver_module.h"

#include "acdc/feedback.h"

namespace acdc::vswitch {

void ReceiverModule::process_ingress_data(net::Packet& packet) {
  FlowRef f =
      core_.entry(FlowKey::from_packet(packet), AcdcCore::kCacheRcvIngressData);
  if (!f) {
    // Admission rejected at the flow-table cap: no per-flow accounting is
    // possible, but the VM-transparency contract still holds — the VM must
    // never see a CE mark, the repurposed reserved bit or an INT stamp.
    packet.tcp.reserved_vm_ecn = false;
    packet.telem.reset();
    if (core_.config.strip_ecn_at_receiver) packet.ip.ecn = net::Ecn::kNotEct;
    if (packet.payload_bytes > 0) ++core_.stats.ingress_data_packets;
    return;
  }
  core_.table.touch(f, core_.sim->now());
  FlowHot& s = *f.hot;
  if (packet.tcp.flags.syn && !packet.tcp.flags.ack && s.fin_seen) {
    core_.reset_entry(f);  // recycled 4-tuple (see SenderModule)
  }

  if (packet.tcp.flags.syn) {
    // The sender vSwitch recorded whether its VM negotiated ECN in the
    // reserved bit (§3.2); remember it and hide the bit from the VM.
    s.rcv_sender_vm_requested_ecn = packet.tcp.reserved_vm_ecn;
    packet.tcp.reserved_vm_ecn = false;
  }
  if (packet.tcp.flags.fin || packet.tcp.flags.rst) s.fin_seen = true;

  // Record and strip the INT telemetry stamp: the latest data-path sample
  // is echoed to the sender on the next PACK/FACK; the VM never sees it.
  if (packet.telem.has_value()) {
    if (packet.payload_bytes > 0) {
      f.cold->telem = *packet.telem;
      s.rcv_telem_valid = true;
    }
    packet.telem.reset();
  }

  if (packet.payload_bytes <= 0) return;
  ++core_.stats.ingress_data_packets;
  s.rcv_active = true;
  s.rcv_total_bytes += static_cast<std::uint32_t>(packet.payload_bytes);
  if (packet.ip.ecn == net::Ecn::kCe) {
    s.rcv_marked_bytes += static_cast<std::uint32_t>(packet.payload_bytes);
  }

  if (core_.config.strip_ecn_at_receiver) {
    // Hide congestion marks from the VM: an ECN-capable VM keeps seeing
    // ECT(0) (so its own stack never reacts, §3.2); a non-ECN VM sees the
    // original Not-ECT.
    const net::Ecn before = packet.ip.ecn;
    if (s.rcv_vm_ecn_negotiated) {
      if (packet.ip.ecn == net::Ecn::kCe) packet.ip.ecn = net::Ecn::kEct0;
    } else {
      packet.ip.ecn = net::Ecn::kNotEct;
    }
    if (packet.ip.ecn != before && core_.tracing()) {
      obs::TraceEvent te =
          core_.flow_event(obs::EventType::kEcnStrip, *f.key);
      te.a = packet.payload_bytes;
      te.b = before == net::Ecn::kCe ? 1 : 0;
      core_.trace->record(te);
    }
  }
}

void ReceiverModule::process_egress_ack(
    net::Packet& ack, const std::function<void(net::PacketPtr)>& emit) {
  if (!core_.config.generate_feedback) return;
  // The ACK acknowledges the reverse flow — the data direction we count.
  FlowRef f = core_.find(FlowKey::from_packet(ack).reversed(),
                         AcdcCore::kCacheRcvEgressAck);
  if (!f) return;
  core_.table.touch(f, core_.sim->now());
  FlowHot& s = *f.hot;

  // Record the local VM's ECN acceptance from its SYN-ACK as it passes.
  if (ack.tcp.flags.syn) {
    s.rcv_vm_ecn_negotiated =
        s.rcv_sender_vm_requested_ecn && ack.tcp.flags.ece;
    return;  // no feedback on handshake packets
  }
  if (!s.rcv_active) return;

  const std::optional<net::TelemetryStamp> telem =
      s.rcv_telem_valid ? std::optional<net::TelemetryStamp>(f.cold->telem)
                        : std::nullopt;
  const bool packed = attach_pack(ack, s.rcv_total_bytes, s.rcv_marked_bytes,
                                  core_.config.mtu_bytes, telem);
  if (packed) {
    ++core_.stats.packs_attached;
  } else {
    ++core_.stats.facks_sent;
    emit(make_fack(ack, s.rcv_total_bytes, s.rcv_marked_bytes, telem));
  }
  if (core_.tracing()) {
    obs::TraceEvent te = core_.flow_event(
        packed ? obs::EventType::kPackAttached : obs::EventType::kFackEmitted,
        *f.key);
    te.a = s.rcv_total_bytes;
    te.b = s.rcv_marked_bytes;
    core_.trace->record(te);
  }
}

}  // namespace acdc::vswitch
