#include "acdc/receiver_module.h"

#include "acdc/feedback.h"

namespace acdc::vswitch {

void ReceiverModule::process_ingress_data(net::Packet& packet) {
  FlowEntry* entry_ptr =
      core_.entry(FlowKey::from_packet(packet), AcdcCore::kCacheRcvIngressData);
  if (entry_ptr == nullptr) {
    // Admission rejected at the flow-table cap: no per-flow accounting is
    // possible, but the VM-transparency contract still holds — the VM must
    // never see a CE mark, the repurposed reserved bit or an INT stamp.
    packet.tcp.reserved_vm_ecn = false;
    packet.telem.reset();
    if (core_.config.strip_ecn_at_receiver) packet.ip.ecn = net::Ecn::kNotEct;
    if (packet.payload_bytes > 0) ++core_.stats.ingress_data_packets;
    return;
  }
  FlowEntry& entry = *entry_ptr;
  core_.table.touch(entry, core_.sim->now());
  if (packet.tcp.flags.syn && !packet.tcp.flags.ack && entry.fin_seen) {
    core_.reset_entry(entry);  // recycled 4-tuple (see SenderModule)
  }
  ReceiverFlowState& r = entry.rcv;

  if (packet.tcp.flags.syn) {
    // The sender vSwitch recorded whether its VM negotiated ECN in the
    // reserved bit (§3.2); remember it and hide the bit from the VM.
    r.sender_vm_requested_ecn = packet.tcp.reserved_vm_ecn;
    packet.tcp.reserved_vm_ecn = false;
  }
  if (packet.tcp.flags.fin || packet.tcp.flags.rst) entry.fin_seen = true;

  // Record and strip the INT telemetry stamp: the latest data-path sample
  // is echoed to the sender on the next PACK/FACK; the VM never sees it.
  if (packet.telem.has_value()) {
    if (packet.payload_bytes > 0) {
      r.telem = *packet.telem;
      r.telem_valid = true;
    }
    packet.telem.reset();
  }

  if (packet.payload_bytes <= 0) return;
  ++core_.stats.ingress_data_packets;
  r.active = true;
  r.total_bytes += static_cast<std::uint32_t>(packet.payload_bytes);
  if (packet.ip.ecn == net::Ecn::kCe) {
    r.marked_bytes += static_cast<std::uint32_t>(packet.payload_bytes);
  }

  if (core_.config.strip_ecn_at_receiver) {
    // Hide congestion marks from the VM: an ECN-capable VM keeps seeing
    // ECT(0) (so its own stack never reacts, §3.2); a non-ECN VM sees the
    // original Not-ECT.
    const net::Ecn before = packet.ip.ecn;
    if (r.vm_ecn_negotiated) {
      if (packet.ip.ecn == net::Ecn::kCe) packet.ip.ecn = net::Ecn::kEct0;
    } else {
      packet.ip.ecn = net::Ecn::kNotEct;
    }
    if (packet.ip.ecn != before && core_.tracing()) {
      obs::TraceEvent te =
          core_.flow_event(obs::EventType::kEcnStrip, entry.key);
      te.a = packet.payload_bytes;
      te.b = before == net::Ecn::kCe ? 1 : 0;
      core_.trace->record(te);
    }
  }
}

void ReceiverModule::process_egress_ack(
    net::Packet& ack, const std::function<void(net::PacketPtr)>& emit) {
  if (!core_.config.generate_feedback) return;
  // The ACK acknowledges the reverse flow — the data direction we count.
  FlowEntry* entry = core_.find(FlowKey::from_packet(ack).reversed(),
                                AcdcCore::kCacheRcvEgressAck);
  if (entry == nullptr) return;
  core_.table.touch(*entry, core_.sim->now());
  const ReceiverFlowState& r = entry->rcv;

  // Record the local VM's ECN acceptance from its SYN-ACK as it passes.
  if (ack.tcp.flags.syn) {
    entry->rcv.vm_ecn_negotiated =
        r.sender_vm_requested_ecn && ack.tcp.flags.ece;
    return;  // no feedback on handshake packets
  }
  if (!r.active) return;

  const std::optional<net::TelemetryStamp> telem =
      r.telem_valid ? std::optional<net::TelemetryStamp>(r.telem)
                    : std::nullopt;
  const bool packed = attach_pack(ack, r.total_bytes, r.marked_bytes,
                                  core_.config.mtu_bytes, telem);
  if (packed) {
    ++core_.stats.packs_attached;
  } else {
    ++core_.stats.facks_sent;
    emit(make_fack(ack, r.total_bytes, r.marked_bytes, telem));
  }
  if (core_.tracing()) {
    obs::TraceEvent te = core_.flow_event(
        packed ? obs::EventType::kPackAttached : obs::EventType::kFackEmitted,
        entry->key);
    te.a = r.total_bytes;
    te.b = r.marked_bytes;
    core_.trace->record(te);
  }
}

}  // namespace acdc::vswitch
