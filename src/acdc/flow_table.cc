#include "acdc/flow_table.h"

#include <cassert>
#include <cstring>
#include <new>
#include <utility>

namespace acdc::vswitch {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::uint32_t FlowTable::lookup_slot(const FlowKey& key) const {
  if (capacity_ == 0) return kNil;
  const std::uint64_t h = hash_key(key);
  const std::uint8_t tag = tag_of(h);
  std::uint32_t slot = home_slot(h);
  for (;;) {
    const std::uint8_t c = ctrl_[slot];
    if (c == tag && hot_[slot].key == key) return slot;
    if (c == kCtrlEmpty) return kNil;
    slot = (slot + 1) & mask_;
  }
}

std::uint32_t FlowTable::insert_slot(const FlowKey& key) const {
  const std::uint64_t h = hash_key(key);
  std::uint32_t slot = home_slot(h);
  while (ctrl_[slot] != kCtrlEmpty) slot = (slot + 1) & mask_;
  return slot;
}

FlowRef FlowTable::find(const FlowKey& key) {
  ++stats_.lookups;
  const std::uint32_t slot = lookup_slot(key);
  if (slot == kNil) return {};
  ++stats_.hits;
  return ref_at(slot, false);
}

FlowRef FlowTable::find_or_create(const FlowKey& key, sim::Time now) {
  ++stats_.lookups;
  if (capacity_ == 0) rehash(kMinCapacity);
  std::uint32_t slot = lookup_slot(key);
  if (slot != kNil) {
    ++stats_.hits;
    return ref_at(slot, false);
  }
  if (max_entries_ != 0 && size_ >= max_entries_) {
    if (overflow_policy_ == OverflowPolicy::kReject || lru_head_ == kNil) {
      ++stats_.admission_rejects;
      return {};
    }
    erase_slot(lru_head_);
    ++stats_.evictions;
    ++stats_.removals;
  }
  ensure_insert_capacity();
  slot = insert_slot(key);
  occupy(slot, key, now);
  ++stats_.inserts;
  return ref_at(slot, true);
}

FlowRef FlowTable::deref(FlowHandle h) {
  if (h.gen == 0 || h.slot >= capacity_ || hot_[h.slot].gen != h.gen) {
    return {};
  }
  return ref_at(h.slot, false);
}

bool FlowTable::erase(const FlowKey& key) {
  const std::uint32_t slot = lookup_slot(key);
  if (slot == kNil) return false;
  erase_slot(slot);
  ++stats_.removals;
  return true;
}

void FlowTable::touch(const FlowRef& ref, sim::Time now) {
  assert(ref.hot != nullptr);
  // A same-tick re-touch keeps its list position: entries with equal
  // activity stamps have no defined idle order anyway, and skipping the
  // relink spares two random-line writes per packet on the hot path (every
  // back-to-back packet of a burst lands in the same tick).
  if (ref.hot->last_activity == now) return;
  ref.hot->last_activity = now;
  const std::uint32_t slot = ref.handle.slot;
  if (slot == lru_tail_) return;  // already most recent
  lru_unlink(slot);
  lru_push_back(slot);
}

void FlowTable::prefetch(const FlowKey& key) const {
#if defined(__GNUC__) || defined(__clang__)
  if (capacity_ == 0) return;
  const std::uint64_t h = hash_key(key);
  const std::uint8_t tag = tag_of(h);
  std::uint32_t slot = home_slot(h);
  // Resolve the probable slot on the ctrl bytes (warmed by the earlier
  // prefetch_probe stage) before warming anything per-slot: a tag match is
  // almost certainly where the lookup ends, and an empty byte is where the
  // probe stops (and where find_or_create inserts — deletion back-shifts
  // chains instead of leaving tombstones, so an empty byte always ends a
  // chain). Warming the home slot instead would miss every off-home entry,
  // which is a third of lookups at high load. The walk is capped so a
  // pathological chain costs bounded prefetch work.
  for (int probes = 0; probes < 32; ++probes) {
    const std::uint8_t c = ctrl_[slot];
    if (c == tag || c == kCtrlEmpty) break;
    slot = (slot + 1) & mask_;
  }
  // Warm the record's first three lines: the two the universal per-packet
  // path is budgeted into (flow_state.h) — probe identity included, since
  // the key and generation share line one with the bookkeeping — plus the
  // per-window line, because an ACK that lands on a window boundary reads
  // alpha and beta and a boundary can arrive on any packet. All three sit
  // inside one 256-byte slot, so a single page translation covers them.
  // Asked for in exclusive state because the path writes them. The fourth
  // line is CUBIC/PowerTCP aux state — flows running those fault it per
  // ACK rather than taxing every flow with a fourth prefetch line.
  const char* s = reinterpret_cast<const char*>(&hot_[slot]);
  __builtin_prefetch(s, 1);
  __builtin_prefetch(s + 64, 1);
  __builtin_prefetch(s + 128, 1);
#else
  (void)key;
#endif
}

void FlowTable::prefetch_probe(const FlowKey& key) const {
#if defined(__GNUC__) || defined(__clang__)
  if (capacity_ == 0) return;
  __builtin_prefetch(&ctrl_[home_slot(hash_key(key))]);
#else
  (void)key;
#endif
}

void FlowTable::set_limit(std::size_t max_entries, OverflowPolicy policy) {
  max_entries_ = max_entries;
  overflow_policy_ = policy;
  // Pre-size a bounded table so steady state at the cap never rehashes:
  // with back-shift deletion keeping chains tombstone-free, eviction churn
  // at the cap runs at a fixed capacity forever.
  if (max_entries_ != 0) reserve_for(max_entries_);
}

std::size_t FlowTable::collect_garbage(sim::Time now, sim::Time idle_timeout,
                                       sim::Time fin_linger) {
  std::size_t removed = 0;
  for (std::uint32_t slot = 0; slot < capacity_;) {
    if (hot_[slot].gen == 0) {
      ++slot;
      continue;
    }
    const FlowHot& hot = hot_[slot];
    const sim::Time idle = now - hot.last_activity;
    const bool expired =
        (hot.fin_seen && idle > fin_linger) || idle > idle_timeout;
    if (!expired) {
      ++slot;
      continue;
    }
    // Deletion may back-shift a later entry into this slot; re-examine it
    // before advancing so a shifted-in expired entry is swept this pass.
    // (A wrap-around shift can still move an unvisited entry behind the
    // cursor — it survives until the next GC interval, which is harmless.)
    erase_slot(slot);
    ++removed;
  }
  stats_.gc_removed += static_cast<std::int64_t>(removed);
  stats_.removals += static_cast<std::int64_t>(removed);
  return removed;
}

FlowRef FlowTable::oldest() {
  if (lru_head_ == kNil) return {};
  return ref_at(lru_head_, false);
}

void FlowTable::occupy(std::uint32_t slot, const FlowKey& key, sim::Time now) {
  ctrl_[slot] = tag_of(hash_key(key));
  // Placement-new: the lanes are raw storage (table_array.h) and this is a
  // slot's first write since allocation or erasure. Identity is stamped
  // after construction — the fresh record zeroes it.
  FlowHot* hot = new (&hot_[slot]) FlowHot{};
  hot->key = key;
  hot->gen = next_gen_++;
  if (next_gen_ == 0) next_gen_ = 1;  // keep 0 = invalid after u32 wrap
  hot->last_activity = now;
  FlowCold* cold = new (&cold_[slot]) FlowCold{};
  cold->created_at = now;
  lru_push_back(slot);
  ++size_;
}

void FlowTable::erase_slot(std::uint32_t slot) {
  lru_unlink(slot);
  --size_;
  // Backward-shift deletion: instead of leaving a tombstone, walk the probe
  // chain after the hole and pull back every entry whose home slot the hole
  // cyclically covers, so no chain ever carries dead slots. This is what
  // keeps eviction-heavy regimes fast: a bounded table at its cap erases on
  // every admission, and tombstones would both stretch every miss probe
  // (a new flow's lookup only stops at a genuinely empty slot) and force
  // periodic cleanup rehashes. Relocated records keep their generation, so
  // a stale handle to the old slot fails deref() and re-probes by key.
  std::uint32_t hole = slot;
  std::uint32_t j = (slot + 1) & mask_;
  while (ctrl_[j] != kCtrlEmpty) {
    const std::uint32_t home = home_slot(hash_key(hot_[j].key));
    // Move when the hole lies cyclically in [home, j): the entry stays
    // findable (its probe chain still reaches it) and moves closer to home.
    if (((hole - home) & mask_) < ((j - home) & mask_)) {
      move_slot(j, hole);
      hole = j;
    }
    j = (j + 1) & mask_;
  }
  ctrl_[hole] = kCtrlEmpty;
  hot_[hole].gen = 0;
}

void FlowTable::move_slot(std::uint32_t from, std::uint32_t to) {
  ctrl_[to] = ctrl_[from];
  // The destination is raw (or vacated) storage; the source records are
  // trivially copyable, so a placement copy is a straight memcpy.
  new (&hot_[to]) FlowHot(hot_[from]);
  new (&cold_[to]) FlowCold(cold_[from]);
  hot_[from].gen = 0;
  // The LRU list is threaded by slot index; re-point the neighbors.
  FlowHot& h = hot_[to];
  if (h.lru_prev != kNil) {
    hot_[h.lru_prev].lru_next = to;
  } else {
    lru_head_ = to;
  }
  if (h.lru_next != kNil) {
    hot_[h.lru_next].lru_prev = to;
  } else {
    lru_tail_ = to;
  }
}

void FlowTable::ensure_insert_capacity() {
  if ((size_ + 1) * 8 <= static_cast<std::size_t>(capacity_) * 7) return;
  rehash(capacity_ == 0 ? kMinCapacity
                        : static_cast<std::size_t>(capacity_) * 2);
}

void FlowTable::reserve_for(std::size_t entries) {
  // Smallest power of two keeping `entries` live flows under the 7/8 bound.
  std::size_t want = next_pow2(entries + entries / 7 + 1);
  if (want < kMinCapacity) want = kMinCapacity;
  if (want > capacity_) rehash(want);
}

void FlowTable::rehash(std::size_t new_capacity) {
  assert((new_capacity & (new_capacity - 1)) == 0);
  const std::uint32_t old_capacity = capacity_;
  auto old_hot = std::move(hot_);
  auto old_cold = std::move(cold_);
  const std::uint32_t old_head = lru_head_;

  capacity_ = static_cast<std::uint32_t>(new_capacity);
  mask_ = capacity_ - 1;
  ctrl_ = TableArray<std::uint8_t>(capacity_);
  std::memset(ctrl_.data(), kCtrlEmpty, capacity_);
  // Zero bytes already mean "vacant" (gen 0) in every slot's identity
  // field; the hot and cold records stay raw until occupy() constructs
  // into them, so growing a sparse table never sweeps hundreds of MB of
  // record storage.
  hot_ = TableArray<FlowHot>(capacity_);
  cold_ = TableArray<FlowCold>(capacity_);
  size_ = 0;
  lru_head_ = kNil;
  lru_tail_ = kNil;

  // Re-insert in LRU order so the eviction order survives the move. Each
  // entry keeps its generation: a handle issued before the rehash now
  // names a slot whose generation is either 0 or some *other* flow's
  // never-reused id, so it can never falsely validate — the holder falls
  // back to a keyed probe. The copied LRU links are stale for the new slot
  // numbering; lru_push_back overwrites them.
  for (std::uint32_t old_slot = old_head; old_slot != kNil;
       old_slot = old_hot[old_slot].lru_next) {
    const FlowHot& src = old_hot[old_slot];
    const std::uint32_t slot = insert_slot(src.key);
    ctrl_[slot] = tag_of(hash_key(src.key));
    new (&hot_[slot]) FlowHot(src);
    new (&cold_[slot]) FlowCold(old_cold[old_slot]);
    lru_push_back(slot);
    ++size_;
  }
  if (old_capacity != 0) ++stats_.rehashes;
}

void FlowTable::lru_unlink(std::uint32_t slot) {
  const std::uint32_t prev = hot_[slot].lru_prev;
  const std::uint32_t next = hot_[slot].lru_next;
  if (prev != kNil) {
    hot_[prev].lru_next = next;
  } else {
    lru_head_ = next;
  }
  if (next != kNil) {
    hot_[next].lru_prev = prev;
  } else {
    lru_tail_ = prev;
  }
}

void FlowTable::lru_push_back(std::uint32_t slot) {
  hot_[slot].lru_prev = lru_tail_;
  hot_[slot].lru_next = kNil;
  if (lru_tail_ != kNil) {
    hot_[lru_tail_].lru_next = slot;
  } else {
    lru_head_ = slot;
  }
  lru_tail_ = slot;
}

}  // namespace acdc::vswitch
