#include "acdc/flow_table.h"

namespace acdc::vswitch {

FlowEntry* FlowTable::find(const FlowKey& key) {
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  ++stats_.hits;
  return it->second.get();
}

FlowTable::FindResult FlowTable::find_or_create(const FlowKey& key,
                                                sim::Time now) {
  ++stats_.lookups;
  auto [it, inserted] = entries_.try_emplace(key);
  if (!inserted) {
    ++stats_.hits;
    return {*it->second, false};
  }
  ++stats_.inserts;
  ++version_;
  it->second = std::make_unique<FlowEntry>();
  FlowEntry& e = *it->second;
  e.key = key;
  e.created_at = now;
  e.last_activity = now;
  return {e, true};
}

bool FlowTable::erase(const FlowKey& key) {
  if (entries_.erase(key) > 0) {
    ++stats_.removals;
    ++version_;
    return true;
  }
  return false;
}

std::size_t FlowTable::collect_garbage(sim::Time now, sim::Time idle_timeout,
                                       sim::Time fin_linger) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const FlowEntry& e = *it->second;
    const sim::Time idle = now - e.last_activity;
    const bool expire =
        (e.fin_seen && idle > fin_linger) || idle > idle_timeout;
    if (expire) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.gc_removed += static_cast<std::int64_t>(removed);
  stats_.removals += static_cast<std::int64_t>(removed);
  if (removed > 0) ++version_;
  return removed;
}

}  // namespace acdc::vswitch
