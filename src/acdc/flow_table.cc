#include "acdc/flow_table.h"

namespace acdc::vswitch {

FlowEntry* FlowTable::find(const FlowKey& key) {
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  ++stats_.hits;
  return it->second.get();
}

FlowEntry& FlowTable::get_or_create(const FlowKey& key, sim::Time now) {
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    return *it->second;
  }
  ++stats_.inserts;
  auto entry = std::make_unique<FlowEntry>();
  entry->key = key;
  entry->created_at = now;
  entry->last_activity = now;
  FlowEntry& ref = *entry;
  entries_.emplace(key, std::move(entry));
  return ref;
}

bool FlowTable::erase(const FlowKey& key) {
  if (entries_.erase(key) > 0) {
    ++stats_.removals;
    return true;
  }
  return false;
}

std::size_t FlowTable::collect_garbage(sim::Time now, sim::Time idle_timeout,
                                       sim::Time fin_linger) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const FlowEntry& e = *it->second;
    const sim::Time idle = now - e.last_activity;
    const bool expire =
        (e.fin_seen && idle > fin_linger) || idle > idle_timeout;
    if (expire) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.gc_removed += static_cast<std::int64_t>(removed);
  stats_.removals += static_cast<std::int64_t>(removed);
  return removed;
}

}  // namespace acdc::vswitch
