#include "acdc/flow_table.h"

#include <cassert>

namespace acdc::vswitch {

void FlowTable::lru_unlink(FlowEntry& e) {
  if (e.lru_prev != nullptr) {
    e.lru_prev->lru_next = e.lru_next;
  } else if (lru_head_ == &e) {
    lru_head_ = e.lru_next;
  }
  if (e.lru_next != nullptr) {
    e.lru_next->lru_prev = e.lru_prev;
  } else if (lru_tail_ == &e) {
    lru_tail_ = e.lru_prev;
  }
  e.lru_prev = nullptr;
  e.lru_next = nullptr;
}

void FlowTable::lru_push_back(FlowEntry& e) {
  e.lru_prev = lru_tail_;
  e.lru_next = nullptr;
  if (lru_tail_ != nullptr) {
    lru_tail_->lru_next = &e;
  } else {
    lru_head_ = &e;
  }
  lru_tail_ = &e;
}

void FlowTable::touch(FlowEntry& entry, sim::Time now) {
  entry.last_activity = now;
  if (lru_tail_ == &entry) return;  // already most recent
  lru_unlink(entry);
  lru_push_back(entry);
}

void FlowTable::set_limit(std::size_t max_entries, OverflowPolicy policy) {
  max_entries_ = max_entries;
  overflow_policy_ = policy;
}

FlowEntry* FlowTable::find(const FlowKey& key) {
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  ++stats_.hits;
  return it->second.get();
}

FlowTable::FindResult FlowTable::find_or_create(const FlowKey& key,
                                                sim::Time now) {
  ++stats_.lookups;
  auto [it, inserted] = entries_.try_emplace(key);
  if (!inserted) {
    ++stats_.hits;
    return {it->second.get(), false};
  }
  if (max_entries_ > 0 && entries_.size() > max_entries_) {
    // The cap is hit. Either make room by dropping the oldest-idle entry
    // (the LRU head — every datapath packet touch()es its entry, so the
    // head is the flow that has been silent the longest) or refuse the
    // insert. Erasing the just-reserved bucket does not count as a
    // membership change: the entry was never visible.
    if (overflow_policy_ == OverflowPolicy::kReject || lru_head_ == nullptr) {
      entries_.erase(it);
      ++stats_.admission_rejects;
      return {nullptr, false};
    }
    FlowEntry* victim = lru_head_;
    lru_unlink(*victim);
    // Erasing another key never invalidates `it` (per-node containers).
    entries_.erase(victim->key);
    ++stats_.evictions;
    ++stats_.removals;
    ++version_;
  }
  ++stats_.inserts;
  ++version_;
  it->second = std::make_unique<FlowEntry>();
  FlowEntry& e = *it->second;
  e.key = key;
  e.created_at = now;
  e.last_activity = now;
  lru_push_back(e);
  return {&e, true};
}

bool FlowTable::erase(const FlowKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  lru_unlink(*it->second);
  entries_.erase(it);
  ++stats_.removals;
  ++version_;
  return true;
}

std::size_t FlowTable::collect_garbage(sim::Time now, sim::Time idle_timeout,
                                       sim::Time fin_linger) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    FlowEntry& e = *it->second;
    const sim::Time idle = now - e.last_activity;
    const bool expire =
        (e.fin_seen && idle > fin_linger) || idle > idle_timeout;
    if (expire) {
      lru_unlink(e);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.gc_removed += static_cast<std::int64_t>(removed);
  stats_.removals += static_cast<std::int64_t>(removed);
  if (removed > 0) ++version_;
  return removed;
}

}  // namespace acdc::vswitch
