#include "acdc/virtual_cc.h"

#include <algorithm>
#include <cmath>

namespace acdc::vswitch {

void VirtualCc::init(SenderFlowState& s, const VccConfig& cfg) const {
  s.cwnd_bytes = cfg.initial_cwnd_packets * s.mss;
  s.ssthresh_bytes = 1e18;
  s.alpha = 1.0;
  s.win_total = 0;
  s.win_marked = 0;
  s.window_boundary_valid = false;
  s.reduced_this_window = false;
  s.pt_prev_valid = false;
  s.pt_power = 1.0;
}

double VirtualCc::min_cwnd_bytes(const SenderFlowState& s) {
  // The enforced window may fall to a single MSS — below host DCTCP's
  // two-packet floor, which is why AC/DC beats host DCTCP at high incast
  // fan-in (Fig. 19a).
  return static_cast<double>(s.mss);
}

bool VirtualCc::window_rolled(SenderFlowState& s) {
  if (!s.window_boundary_valid || tcp::seq_ge(s.snd_una, s.cc_window_end)) {
    s.cc_window_end = s.snd_nxt;
    s.window_boundary_valid = true;
    s.reduced_this_window = false;
    return true;
  }
  return false;
}

void VirtualCc::reno_grow(SenderFlowState& s, std::int64_t acked_bytes) {
  if (acked_bytes <= 0) return;
  if (s.cwnd_bytes < s.ssthresh_bytes) {
    s.cwnd_bytes += static_cast<double>(acked_bytes);  // slow start
  } else {
    // +1 MSS per cwnd of ACKed data.
    s.cwnd_bytes +=
        static_cast<double>(s.mss) * static_cast<double>(acked_bytes) /
        std::max(1.0, s.cwnd_bytes);
  }
}

void VirtualCc::on_timeout(SenderFlowState& s, const VccConfig& cfg) const {
  (void)cfg;
  s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes / 2.0);
  s.cwnd_bytes = min_cwnd_bytes(s);
  s.window_boundary_valid = false;
}

// ------------------------------------------------------------------- DCTCP

double VirtualDctcp::reduction_factor(double alpha, double beta) {
  // Eq. 1: rwnd = rwnd * (1 - (alpha - alpha*beta/2)).
  const double cut = alpha - alpha * beta / 2.0;
  return std::clamp(1.0 - cut, 0.0, 1.0);
}

void VirtualDctcp::on_ack(SenderFlowState& s, const FlowPolicy& policy,
                          const VccConfig& cfg, const VccEvent& ev) const {
  // Track the fraction of CE-marked bytes reported by the receiver module.
  s.win_total += ev.fb_total_delta;
  s.win_marked += ev.fb_marked_delta;

  // Update alpha once per window of data (≈ once per RTT, Fig. 5).
  if (window_rolled(s) && s.win_total > 0) {
    const double fraction = static_cast<double>(s.win_marked) /
                            static_cast<double>(s.win_total);
    s.alpha = (1.0 - cfg.g) * s.alpha + cfg.g * fraction;
    s.win_total = 0;
    s.win_marked = 0;
  }

  const bool loss = ev.dupack && ev.dupacks >= cfg.loss_dupacks;
  const bool congestion = ev.fb_marked_delta > 0;

  if (loss) {
    // Fig. 5: loss implies maximal alpha, then the window is cut (at most
    // once per window). Retransmission itself is the VM's job.
    s.alpha = 1.0;
  }
  if (loss || congestion) {
    if (!s.reduced_this_window) {
      s.reduced_this_window = true;
      s.cc_window_end = s.snd_nxt;
      s.window_boundary_valid = true;
      s.cwnd_bytes = std::max(
          min_cwnd_bytes(s),
          s.cwnd_bytes * reduction_factor(s.alpha, policy.beta));
      s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes);
      return;
    }
    // Already cut in this window: keep growing like the host stack, which
    // runs tcp_cong_avoid() on every ACK outside the reduction itself.
  }
  if (!ev.dupack) reno_grow(s, ev.acked_bytes);  // tcp_cong_avoid()
}

void VirtualDctcp::on_timeout(SenderFlowState& s, const VccConfig& cfg) const {
  (void)cfg;
  s.alpha = 1.0;
  s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes / 2.0);
  s.cwnd_bytes = min_cwnd_bytes(s);
  s.window_boundary_valid = false;
}

// -------------------------------------------------------------------- Reno

void VirtualReno::on_ack(SenderFlowState& s, const FlowPolicy& policy,
                         const VccConfig& cfg, const VccEvent& ev) const {
  (void)policy;
  window_rolled(s);
  const bool loss = ev.dupack && ev.dupacks >= cfg.loss_dupacks;
  const bool congestion = ev.fb_marked_delta > 0;
  if (loss || congestion) {
    if (!s.reduced_this_window) {
      s.reduced_this_window = true;
      s.cc_window_end = s.snd_nxt;
      s.window_boundary_valid = true;
      s.cwnd_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes / 2.0);
      s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes);
    }
    return;
  }
  if (!ev.dupack) reno_grow(s, ev.acked_bytes);
}

// ------------------------------------------------------------------- CUBIC

void VirtualCubic::cut(SenderFlowState& s) const {
  const double w = s.cwnd_bytes;
  s.cubic_w_last_max = w < s.cubic_w_last_max ? w * (2.0 - kBeta) / 2.0 : w;
  s.cwnd_bytes = std::max(min_cwnd_bytes(s), w * kBeta);
  s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes);
  s.cubic_epoch_start = sim::kNoTime;
}

void VirtualCubic::grow(SenderFlowState& s, const VccEvent& ev) const {
  if (s.cwnd_bytes < s.ssthresh_bytes) {
    s.cwnd_bytes += static_cast<double>(ev.acked_bytes);
    return;
  }
  const double mss = static_cast<double>(s.mss);
  if (s.cubic_epoch_start == sim::kNoTime) {
    s.cubic_epoch_start = ev.now;
    const double w_pkts = s.cwnd_bytes / mss;
    const double wmax_pkts = s.cubic_w_last_max / mss;
    if (w_pkts < wmax_pkts) {
      s.cubic_k = std::cbrt((wmax_pkts - w_pkts) / kC);
      s.cubic_origin = wmax_pkts;
    } else {
      s.cubic_k = 0.0;
      s.cubic_origin = w_pkts;
    }
    s.cubic_tcp_wnd = w_pkts;
  }
  const double t = sim::to_seconds(ev.now - s.cubic_epoch_start);
  const double delta = t - s.cubic_k;
  const double target_pkts = s.cubic_origin + kC * delta * delta * delta;
  const double w_pkts = s.cwnd_bytes / mss;
  const double acked_pkts =
      static_cast<double>(ev.acked_bytes) / std::max(1.0, mss);
  double next_pkts = w_pkts;
  if (target_pkts > w_pkts) {
    next_pkts += (target_pkts - w_pkts) / w_pkts * acked_pkts;
  } else {
    next_pkts += 0.01 * acked_pkts / w_pkts;
  }
  s.cubic_tcp_wnd += 3.0 * (1.0 - kBeta) / (1.0 + kBeta) * acked_pkts / w_pkts;
  next_pkts = std::max(next_pkts, s.cubic_tcp_wnd);
  s.cwnd_bytes = next_pkts * mss;
}

void VirtualCubic::on_ack(SenderFlowState& s, const FlowPolicy& policy,
                          const VccConfig& cfg, const VccEvent& ev) const {
  (void)policy;
  window_rolled(s);
  const bool loss = ev.dupack && ev.dupacks >= cfg.loss_dupacks;
  const bool congestion = ev.fb_marked_delta > 0;
  if (loss || congestion) {
    if (!s.reduced_this_window) {
      s.reduced_this_window = true;
      s.cc_window_end = s.snd_nxt;
      s.window_boundary_valid = true;
      cut(s);
    }
    return;
  }
  if (!ev.dupack) grow(s, ev);
}

void VirtualCubic::on_timeout(SenderFlowState& s, const VccConfig& cfg) const {
  VirtualCc::on_timeout(s, cfg);
  s.cubic_epoch_start = sim::kNoTime;
}

// ---------------------------------------------------------------- PowerTCP

double VirtualPowerTcp::bdp_bytes(const VccConfig& cfg,
                                  std::uint32_t tx_bytes_per_ms) {
  const double rate = std::max(1.0, static_cast<double>(tx_bytes_per_ms));
  return rate * (cfg.base_rtt_us / 1000.0);
}

void VirtualPowerTcp::on_ack(SenderFlowState& s, const FlowPolicy& policy,
                             const VccConfig& cfg, const VccEvent& ev) const {
  (void)policy;
  window_rolled(s);
  const bool loss = ev.dupack && ev.dupacks >= cfg.loss_dupacks;
  if (loss) {
    if (!s.reduced_this_window) {
      s.reduced_this_window = true;
      s.cc_window_end = s.snd_nxt;
      s.window_boundary_valid = true;
      s.cwnd_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes / 2.0);
      s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes);
    }
    return;
  }
  if (ev.dupack) return;
  if (!ev.telemetry) {
    reno_grow(s, ev.acked_bytes);
    return;
  }

  const double rate = std::max(1.0, static_cast<double>(ev.tx_bytes_per_ms));
  const double bdp = bdp_bytes(cfg, ev.tx_bytes_per_ms);

  // Current Λ = q̇ + txRate (bytes/ms). The gradient differences this stamp
  // against the previous one; both the timestamp and the subtraction are
  // u32-wrap safe. Stale or same-µs samples contribute no gradient.
  double gradient = 0.0;
  double dt_smooth_us = 0.0;
  const bool had_prev = s.pt_prev_valid;
  if (s.pt_prev_valid) {
    const std::uint32_t dt_us = ev.ts_us - s.pt_prev_ts_us;
    if (dt_us > 0 && dt_us < 1'000'000'000u) {
      const double dq = static_cast<double>(ev.qlen_bytes) -
                        static_cast<double>(s.pt_prev_qlen_bytes);
      gradient = dq / (static_cast<double>(dt_us) / 1000.0);
      dt_smooth_us = static_cast<double>(dt_us);
    }
  }
  s.pt_prev_qlen_bytes = ev.qlen_bytes;
  s.pt_prev_ts_us = ev.ts_us;
  s.pt_prev_valid = true;

  const double current = std::max(1.0, gradient + rate);   // Λ
  const double voltage = static_cast<double>(ev.qlen_bytes) + bdp;  // ν
  const double base_power = rate * bdp;                    // e = b²τ
  const double power_inst = current * voltage / base_power;
  // Smooth normalized power over the base-RTT timescale τ (the paper's
  // Γ ← (Γ·(τ−∆t) + γ_inst·∆t)/τ): one sample differenced across a
  // pure-drain gap (gradient ≈ -rate ⇒ Λ at its floor) must not slam the
  // window to the cap on its own.
  const double tau_us = std::max(1.0, cfg.base_rtt_us);
  if (!had_prev) {
    s.pt_power = power_inst;
  } else {
    const double dt = std::min(dt_smooth_us, tau_us);
    s.pt_power = (s.pt_power * (tau_us - dt) + power_inst * dt) / tau_us;
  }
  const double gamma_norm = std::max(1e-9, s.pt_power);

  const double target =
      s.cwnd_bytes / gamma_norm + cfg.power_beta_mss * s.mss;
  const double w =
      cfg.power_gamma * target + (1.0 - cfg.power_gamma) * s.cwnd_bytes;
  const double cap = std::max(min_cwnd_bytes(s), cfg.power_cap_bdps * bdp);
  s.cwnd_bytes = std::clamp(w, min_cwnd_bytes(s), cap);
}

void VirtualPowerTcp::on_timeout(SenderFlowState& s,
                                 const VccConfig& cfg) const {
  VirtualCc::on_timeout(s, cfg);
  s.pt_prev_valid = false;
}

// --------------------------------------------------------------- Fair rate

double VirtualFairRate::window_bytes(const VccConfig& cfg,
                                     std::uint32_t fair_bytes_per_ms) {
  return static_cast<double>(fair_bytes_per_ms) * (cfg.base_rtt_us / 1000.0) *
         cfg.fair_window_rtts;
}

void VirtualFairRate::on_ack(SenderFlowState& s, const FlowPolicy& policy,
                             const VccConfig& cfg, const VccEvent& ev) const {
  (void)policy;
  window_rolled(s);
  const bool loss = ev.dupack && ev.dupacks >= cfg.loss_dupacks;
  if (loss) {
    if (!s.reduced_this_window) {
      s.reduced_this_window = true;
      s.cc_window_end = s.snd_nxt;
      s.window_boundary_valid = true;
      s.cwnd_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes / 2.0);
      s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes);
    }
    return;
  }
  if (ev.dupack) return;
  if (!ev.telemetry || ev.fair_bytes_per_ms == 0) {
    // No switch allocation yet (e.g. handshake, or an INT-less path):
    // probe gently like Reno until one arrives.
    reno_grow(s, ev.acked_bytes);
    return;
  }
  // Track the switch's allocation directly — the controller's whole point
  // is that the vSwitch pins the VM to the fabric-computed fair share.
  s.cwnd_bytes =
      std::max(min_cwnd_bytes(s), window_bytes(cfg, ev.fair_bytes_per_ms));
}

// ----------------------------------------------------------------- Registry

const VirtualCc& virtual_cc_for(VccKind kind) {
  static const VirtualDctcp dctcp;
  static const VirtualReno reno;
  static const VirtualCubic cubic;
  static const VirtualPowerTcp powertcp;
  static const VirtualFairRate fairrate;
  switch (kind) {
    case VccKind::kReno:
      return reno;
    case VccKind::kCubic:
      return cubic;
    case VccKind::kPowerTcp:
      return powertcp;
    case VccKind::kFairRate:
      return fairrate;
    case VccKind::kDctcp:
      break;
  }
  return dctcp;
}

}  // namespace acdc::vswitch
