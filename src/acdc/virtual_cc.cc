#include "acdc/virtual_cc.h"

#include <algorithm>
#include <cmath>

namespace acdc::vswitch {

void VirtualCc::init(FlowHot& s, const VccConfig& cfg) const {
  s.cwnd_bytes = cfg.initial_cwnd_packets * s.mss;
  s.ssthresh_bytes = 1e18;
  s.alpha = 1.0;
  s.win_total = 0;
  s.win_marked = 0;
  s.window_boundary_valid = false;
  s.reduced_this_window = false;
  // All-zero bytes are a valid fresh state for every variant (flow_state.h),
  // so one fill resets whichever algorithm the flow runs.
  s.cc = CcState{};
}

double VirtualCc::min_cwnd_bytes(const FlowHot& s) {
  // The enforced window may fall to a single MSS — below host DCTCP's
  // two-packet floor, which is why AC/DC beats host DCTCP at high incast
  // fan-in (Fig. 19a).
  return static_cast<double>(s.mss);
}

double VirtualCc::tau_us(const VccConfig& cfg, const VccEvent& ev) {
  return ev.base_rtt_us > 0.0 ? ev.base_rtt_us : cfg.base_rtt_us;
}

bool VirtualCc::window_rolled(FlowHot& s) {
  if (!s.window_boundary_valid || tcp::seq_ge(s.snd_una, s.cc_window_end)) {
    s.cc_window_end = s.snd_nxt;
    s.window_boundary_valid = true;
    s.reduced_this_window = false;
    return true;
  }
  return false;
}

void VirtualCc::reno_grow(FlowHot& s, std::int64_t acked_bytes) {
  if (acked_bytes <= 0) return;
  if (s.cwnd_bytes < s.ssthresh_bytes) {
    s.cwnd_bytes += static_cast<double>(acked_bytes);  // slow start
  } else {
    // +1 MSS per cwnd of ACKed data.
    s.cwnd_bytes +=
        static_cast<double>(s.mss) * static_cast<double>(acked_bytes) /
        std::max(1.0, s.cwnd_bytes);
  }
}

void VirtualCc::on_timeout(FlowHot& s, const VccConfig& cfg) const {
  (void)cfg;
  s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes / 2.0);
  s.cwnd_bytes = min_cwnd_bytes(s);
  s.window_boundary_valid = false;
}

// ------------------------------------------------------------------- DCTCP

double VirtualDctcp::reduction_factor(double alpha, double beta) {
  // Eq. 1: rwnd = rwnd * (1 - (alpha - alpha*beta/2)).
  const double cut = alpha - alpha * beta / 2.0;
  return std::clamp(1.0 - cut, 0.0, 1.0);
}

void VirtualDctcp::on_ack(FlowHot& s, const VccConfig& cfg,
                          const VccEvent& ev) const {
  // Track the fraction of CE-marked bytes reported by the receiver module.
  s.win_total += ev.fb_total_delta;
  s.win_marked += ev.fb_marked_delta;

  // Update alpha once per window of data (≈ once per RTT, Fig. 5).
  if (window_rolled(s) && s.win_total > 0) {
    const double fraction = static_cast<double>(s.win_marked) /
                            static_cast<double>(s.win_total);
    s.alpha = (1.0 - cfg.dctcp.g) * s.alpha + cfg.dctcp.g * fraction;
    s.win_total = 0;
    s.win_marked = 0;
  }

  const bool loss = ev.dupack && ev.dupacks >= cfg.loss_dupacks;
  const bool congestion = ev.fb_marked_delta > 0;

  if (loss) {
    // Fig. 5: loss implies maximal alpha, then the window is cut (at most
    // once per window). Retransmission itself is the VM's job.
    s.alpha = 1.0;
  }
  if (loss || congestion) {
    if (!s.reduced_this_window) {
      s.reduced_this_window = true;
      s.cc_window_end = s.snd_nxt;
      s.window_boundary_valid = true;
      s.cwnd_bytes =
          std::max(min_cwnd_bytes(s),
                   s.cwnd_bytes * reduction_factor(s.alpha, s.beta));
      s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes);
      return;
    }
    // Already cut in this window: keep growing like the host stack, which
    // runs tcp_cong_avoid() on every ACK outside the reduction itself.
  }
  if (!ev.dupack) reno_grow(s, ev.acked_bytes);  // tcp_cong_avoid()
}

void VirtualDctcp::on_timeout(FlowHot& s, const VccConfig& cfg) const {
  (void)cfg;
  s.alpha = 1.0;
  s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes / 2.0);
  s.cwnd_bytes = min_cwnd_bytes(s);
  s.window_boundary_valid = false;
}

// -------------------------------------------------------------------- Reno

void VirtualReno::on_ack(FlowHot& s, const VccConfig& cfg,
                         const VccEvent& ev) const {
  window_rolled(s);
  const bool loss = ev.dupack && ev.dupacks >= cfg.loss_dupacks;
  const bool congestion = ev.fb_marked_delta > 0;
  if (loss || congestion) {
    if (!s.reduced_this_window) {
      s.reduced_this_window = true;
      s.cc_window_end = s.snd_nxt;
      s.window_boundary_valid = true;
      s.cwnd_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes / 2.0);
      s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes);
    }
    return;
  }
  if (!ev.dupack) reno_grow(s, ev.acked_bytes);
}

// ------------------------------------------------------------------- CUBIC

void VirtualCubic::cut(FlowHot& s) const {
  CubicCc& c = s.cc.cubic;
  const double w = s.cwnd_bytes;
  c.w_last_max = w < c.w_last_max ? w * (2.0 - kBeta) / 2.0 : w;
  s.cwnd_bytes = std::max(min_cwnd_bytes(s), w * kBeta);
  s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes);
  c.epoch_valid = false;
}

void VirtualCubic::grow(FlowHot& s, const VccEvent& ev) const {
  if (s.cwnd_bytes < s.ssthresh_bytes) {
    s.cwnd_bytes += static_cast<double>(ev.acked_bytes);
    return;
  }
  CubicCc& c = s.cc.cubic;
  const double mss = static_cast<double>(s.mss);
  if (!c.epoch_valid) {
    c.epoch_valid = true;
    c.epoch_start = ev.now;
    const double w_pkts = s.cwnd_bytes / mss;
    const double wmax_pkts = c.w_last_max / mss;
    if (w_pkts < wmax_pkts) {
      c.k = std::cbrt((wmax_pkts - w_pkts) / kC);
      c.origin = wmax_pkts;
    } else {
      c.k = 0.0;
      c.origin = w_pkts;
    }
    c.tcp_wnd = w_pkts;
  }
  const double t = sim::to_seconds(ev.now - c.epoch_start);
  const double delta = t - c.k;
  const double target_pkts = c.origin + kC * delta * delta * delta;
  const double w_pkts = s.cwnd_bytes / mss;
  const double acked_pkts =
      static_cast<double>(ev.acked_bytes) / std::max(1.0, mss);
  double next_pkts = w_pkts;
  if (target_pkts > w_pkts) {
    next_pkts += (target_pkts - w_pkts) / w_pkts * acked_pkts;
  } else {
    next_pkts += 0.01 * acked_pkts / w_pkts;
  }
  c.tcp_wnd += 3.0 * (1.0 - kBeta) / (1.0 + kBeta) * acked_pkts / w_pkts;
  next_pkts = std::max(next_pkts, c.tcp_wnd);
  s.cwnd_bytes = next_pkts * mss;
}

void VirtualCubic::on_ack(FlowHot& s, const VccConfig& cfg,
                          const VccEvent& ev) const {
  window_rolled(s);
  const bool loss = ev.dupack && ev.dupacks >= cfg.loss_dupacks;
  const bool congestion = ev.fb_marked_delta > 0;
  if (loss || congestion) {
    if (!s.reduced_this_window) {
      s.reduced_this_window = true;
      s.cc_window_end = s.snd_nxt;
      s.window_boundary_valid = true;
      cut(s);
    }
    return;
  }
  if (!ev.dupack) grow(s, ev);
}

void VirtualCubic::on_timeout(FlowHot& s, const VccConfig& cfg) const {
  VirtualCc::on_timeout(s, cfg);
  s.cc.cubic.epoch_valid = false;
}

// ---------------------------------------------------------------- PowerTCP

double VirtualPowerTcp::bdp_bytes(double tau_us,
                                  std::uint32_t tx_bytes_per_ms) {
  const double rate = std::max(1.0, static_cast<double>(tx_bytes_per_ms));
  return rate * (tau_us / 1000.0);
}

void VirtualPowerTcp::on_ack(FlowHot& s, const VccConfig& cfg,
                             const VccEvent& ev) const {
  window_rolled(s);
  const bool loss = ev.dupack && ev.dupacks >= cfg.loss_dupacks;
  if (loss) {
    if (!s.reduced_this_window) {
      s.reduced_this_window = true;
      s.cc_window_end = s.snd_nxt;
      s.window_boundary_valid = true;
      s.cwnd_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes / 2.0);
      s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes);
    }
    return;
  }
  if (ev.dupack) return;
  if (!ev.telemetry) {
    reno_grow(s, ev.acked_bytes);
    return;
  }

  PowerCc& pt = s.cc.pt;
  const double tau = std::max(1.0, tau_us(cfg, ev));
  const double rate = std::max(1.0, static_cast<double>(ev.tx_bytes_per_ms));
  const double bdp = bdp_bytes(tau, ev.tx_bytes_per_ms);

  // Current Λ = q̇ + txRate (bytes/ms). The gradient differences this stamp
  // against the previous one; both the timestamp and the subtraction are
  // u32-wrap safe. Stale or same-µs samples contribute no gradient.
  double gradient = 0.0;
  double dt_smooth_us = 0.0;
  const bool had_prev = pt.prev_valid;
  if (pt.prev_valid) {
    const std::uint32_t dt_us = ev.ts_us - pt.prev_ts_us;
    if (dt_us > 0 && dt_us < 1'000'000'000u) {
      const double dq = static_cast<double>(ev.qlen_bytes) -
                        static_cast<double>(pt.prev_qlen_bytes);
      gradient = dq / (static_cast<double>(dt_us) / 1000.0);
      dt_smooth_us = static_cast<double>(dt_us);
    }
  }
  pt.prev_qlen_bytes = ev.qlen_bytes;
  pt.prev_ts_us = ev.ts_us;
  pt.prev_valid = true;

  const double current = std::max(1.0, gradient + rate);   // Λ
  const double voltage = static_cast<double>(ev.qlen_bytes) + bdp;  // ν
  const double base_power = rate * bdp;                    // e = b²τ
  const double power_inst = current * voltage / base_power;
  // Smooth normalized power over the base-RTT timescale τ (the paper's
  // Γ ← (Γ·(τ−∆t) + γ_inst·∆t)/τ): one sample differenced across a
  // pure-drain gap (gradient ≈ -rate ⇒ Λ at its floor) must not slam the
  // window to the cap on its own.
  if (!had_prev) {
    pt.power = power_inst;
  } else {
    const double dt = std::min(dt_smooth_us, tau);
    pt.power = (pt.power * (tau - dt) + power_inst * dt) / tau;
  }
  const double gamma_norm = std::max(1e-9, pt.power);

  const double target =
      s.cwnd_bytes / gamma_norm + cfg.powertcp.beta_mss * s.mss;
  const double w =
      cfg.powertcp.gamma * target + (1.0 - cfg.powertcp.gamma) * s.cwnd_bytes;
  const double cap =
      std::max(min_cwnd_bytes(s), cfg.powertcp.cap_bdps * bdp);
  s.cwnd_bytes = std::clamp(w, min_cwnd_bytes(s), cap);
}

void VirtualPowerTcp::on_timeout(FlowHot& s, const VccConfig& cfg) const {
  VirtualCc::on_timeout(s, cfg);
  s.cc.pt.prev_valid = false;
}

// --------------------------------------------------------------- Fair rate

double VirtualFairRate::window_bytes(double tau_us, double window_rtts,
                                     std::uint32_t fair_bytes_per_ms) {
  return static_cast<double>(fair_bytes_per_ms) * (tau_us / 1000.0) *
         window_rtts;
}

void VirtualFairRate::on_ack(FlowHot& s, const VccConfig& cfg,
                             const VccEvent& ev) const {
  window_rolled(s);
  const bool loss = ev.dupack && ev.dupacks >= cfg.loss_dupacks;
  if (loss) {
    if (!s.reduced_this_window) {
      s.reduced_this_window = true;
      s.cc_window_end = s.snd_nxt;
      s.window_boundary_valid = true;
      s.cwnd_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes / 2.0);
      s.ssthresh_bytes = std::max(min_cwnd_bytes(s), s.cwnd_bytes);
    }
    return;
  }
  if (ev.dupack) return;
  if (!ev.telemetry || ev.fair_bytes_per_ms == 0) {
    // No switch allocation yet (e.g. handshake, or an INT-less path):
    // probe gently like Reno until one arrives.
    reno_grow(s, ev.acked_bytes);
    return;
  }
  // Track the switch's allocation directly — the controller's whole point
  // is that the vSwitch pins the VM to the fabric-computed fair share.
  s.cwnd_bytes = std::max(
      min_cwnd_bytes(s),
      window_bytes(tau_us(cfg, ev), cfg.fair.window_rtts,
                   ev.fair_bytes_per_ms));
}

// ----------------------------------------------------------------- Registry

const VirtualCc& virtual_cc_for(VccKind kind) {
  static const VirtualDctcp dctcp;
  static const VirtualReno reno;
  static const VirtualCubic cubic;
  static const VirtualPowerTcp powertcp;
  static const VirtualFairRate fairrate;
  switch (kind) {
    case VccKind::kReno:
      return reno;
    case VccKind::kCubic:
      return cubic;
    case VccKind::kPowerTcp:
      return powertcp;
    case VccKind::kFairRate:
      return fairrate;
    case VccKind::kDctcp:
      break;
  }
  return dctcp;
}

}  // namespace acdc::vswitch
