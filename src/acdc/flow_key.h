// Directional 5-tuple flow identity (§4: "flows are hashed on a 5-tuple ...
// to obtain a flow's state"; the VLAN id of the paper's tuple is constant in
// our single-tenant simulations and omitted).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/packet.h"

namespace acdc::vswitch {

struct FlowKey {
  net::IpAddr src_ip = 0;
  net::IpAddr dst_ip = 0;
  net::TcpPort src_port = 0;
  net::TcpPort dst_port = 0;

  bool operator==(const FlowKey&) const = default;

  FlowKey reversed() const {
    return FlowKey{dst_ip, src_ip, dst_port, src_port};
  }

  static FlowKey from_packet(const net::Packet& p) {
    return FlowKey{p.ip.src, p.ip.dst, p.tcp.src_port, p.tcp.dst_port};
  }

  std::string to_string() const;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    // FNV-1a over the tuple fields, then a murmur3-style finalizer. The
    // finalizer is load-bearing: FNV's multiply only carries entropy
    // *upward*, so without it bit i of the hash never sees input bits
    // above i — and a power-of-two table indexed by the low bits would
    // send every flow of one host pair (same IPs, same dst_port, varying
    // src_port mixed in at bits 16..31) to a single home slot, degenerating
    // the probe chain into one cluster the size of the live flow count.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(k.src_ip);
    mix(k.dst_ip);
    mix((static_cast<std::uint64_t>(k.src_port) << 16) | k.dst_port);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace acdc::vswitch
