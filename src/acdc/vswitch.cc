#include "acdc/vswitch.h"

#include <utility>

namespace acdc::vswitch {

AcdcVswitch::AcdcVswitch(sim::Simulator* sim, AcdcConfig config)
    : sender_(core_), receiver_(core_) {
  core_.sim = sim;
  core_.config = config;
  if (config.flow_table_max_entries > 0) {
    core_.table.set_limit(
        static_cast<std::size_t>(config.flow_table_max_entries),
        config.flow_table_overflow);
  }
}

void AcdcVswitch::ensure_timers() {
  if (core_.config.infer_timeouts && !scan_armed_) {
    scan_armed_ = true;
    core_.sim->schedule(core_.config.inactivity_scan_interval,
                        [this] { run_inactivity_scan(); });
  }
  if (!gc_armed_) {
    gc_armed_ = true;
    core_.sim->schedule(core_.config.gc_interval, [this] { run_gc(); });
  }
}

void AcdcVswitch::run_inactivity_scan() {
  scan_armed_ = false;
  const int fired = sender_.infer_timeouts(core_.sim->now());
  if (fired > 0 && core_.config.inject_dupacks_on_timeout) {
    core_.table.for_each([this](const FlowRef& f) {
      if (f.cold->last_timeout_at == core_.sim->now()) {
        send_dupacks(*f.key, 3);
      }
    });
  }
  if (core_.table.size() > 0) {
    scan_armed_ = true;
    core_.sim->schedule(core_.config.inactivity_scan_interval,
                        [this] { run_inactivity_scan(); });
  }
}

void AcdcVswitch::run_gc() {
  gc_armed_ = false;
  core_.table.collect_garbage(core_.sim->now(), core_.config.idle_timeout,
                              core_.config.fin_linger);
  if (core_.table.size() > 0) {
    gc_armed_ = true;
    core_.sim->schedule(core_.config.gc_interval, [this] { run_gc(); });
  }
}

void AcdcVswitch::handle_egress(net::PacketPtr packet) {
  ensure_timers();
  // RSTs count as data-direction traffic so the sender module sees them and
  // can mark the entry for fast GC (an aborted flow never sends a FIN).
  const bool data_direction = packet->payload_bytes > 0 ||
                              packet->tcp.flags.syn ||
                              packet->tcp.flags.fin || packet->tcp.flags.rst;
  if (data_direction && !sender_.process_egress(*packet)) {
    return;  // policed
  }
  if (packet->tcp.flags.ack) {
    receiver_.process_egress_ack(
        *packet, [this](net::PacketPtr fack) { send_down(std::move(fack)); });
  }
  // §3.2: ALL egress packets are marked ECN-capable — including SYNs and
  // pure ACKs — so no packet of a managed flow is WRED-dropped where it
  // could have been marked. The peer's receiver module strips the bits.
  if (core_.config.mark_egress_ect &&
      packet->ip.ecn == net::Ecn::kNotEct) {
    packet->ip.ecn = net::Ecn::kEct0;
  }
  send_down(std::move(packet));
}

void AcdcVswitch::handle_ingress(net::PacketPtr packet) {
  ensure_timers();
  const bool data_direction = packet->payload_bytes > 0 ||
                              packet->tcp.flags.syn ||
                              packet->tcp.flags.fin || packet->tcp.flags.rst;
  if (data_direction) {
    receiver_.process_ingress_data(*packet);
  }
  if (packet->tcp.flags.ack || packet->acdc_fack) {
    if (!sender_.process_ingress_ack(*packet)) {
      return;  // FACK consumed
    }
  }
  send_up(std::move(packet));
}

// How many packets ahead of processing each prefetch stage runs. Stage 1
// (ctrl bytes) leads stage 2 by enough per-packet work that the ctrl line
// has landed when stage 2 scans it; stage 2 (resolved key/gen + hot lines)
// leads processing by enough to cover a DRAM load (~100ns) without the
// in-flight window (~6 lines/packet) outrunning L1 or the core's
// miss-handling capacity.
constexpr std::size_t kStage1Depth = 16;
constexpr std::size_t kStage2Depth = 8;

void AcdcVswitch::prefetch_stage1(const net::Packet& p) const {
  // Warm the ctrl bytes every probe of this packet starts from — the
  // data-direction key for data/handshake packets, the reversed key for
  // ACK processing. For the reversed key of a piggybacked ACK this is the
  // whole warming story: it usually belongs to a unidirectional flow whose
  // reverse entry doesn't exist, and the ctrl bytes are all an absent-key
  // probe reads; when the reverse entry does exist, its own data packets
  // keep it warm.
  const FlowKey key = FlowKey::from_packet(p);
  const bool data = p.payload_bytes > 0 || p.tcp.flags.syn ||
                    p.tcp.flags.fin || p.tcp.flags.rst;
  if (data) core_.table.prefetch_probe(key);
  if (p.tcp.flags.ack || p.acdc_fack) {
    core_.table.prefetch_probe(key.reversed());
  }
}

void AcdcVswitch::prefetch_stage2(const net::Packet& p) const {
  // Resolve each expected-hit probe on the stage-1-warmed ctrl bytes and
  // warm the record lines at the slot the lookup will actually land on.
  const FlowKey key = FlowKey::from_packet(p);
  const bool data = p.payload_bytes > 0 || p.tcp.flags.syn ||
                    p.tcp.flags.fin || p.tcp.flags.rst;
  if (data) {
    core_.table.prefetch(key);
  } else if (p.tcp.flags.ack || p.acdc_fack) {
    // A pure ACK's whole purpose is the reversed-key entry — warm it fully.
    core_.table.prefetch(key.reversed());
  }
}

void AcdcVswitch::process_burst(net::PacketPtr* packets, std::size_t count) {
  // Software-pipelined: each iteration issues stage-1 prefetches
  // kStage1Depth packets ahead and stage-2 prefetches kStage2Depth ahead,
  // then runs the exact per-packet pipeline on the current one, in arrival
  // order. Prefetching mutates nothing, so this is provably equivalent to
  // `count` single-packet deliveries.
  for (std::size_t i = 0; i < std::min(kStage1Depth, count); ++i) {
    prefetch_stage1(*packets[i]);
  }
  for (std::size_t i = 0; i < std::min(kStage2Depth, count); ++i) {
    prefetch_stage2(*packets[i]);
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (i + kStage1Depth < count) prefetch_stage1(*packets[i + kStage1Depth]);
    if (i + kStage2Depth < count) prefetch_stage2(*packets[i + kStage2Depth]);
    handle_ingress(std::move(packets[i]));
  }
}

void AcdcVswitch::handle_egress_burst(net::PacketPtr* packets,
                                      std::size_t count) {
  for (std::size_t i = 0; i < std::min(kStage1Depth, count); ++i) {
    prefetch_stage1(*packets[i]);
  }
  for (std::size_t i = 0; i < std::min(kStage2Depth, count); ++i) {
    prefetch_stage2(*packets[i]);
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (i + kStage1Depth < count) prefetch_stage1(*packets[i + kStage1Depth]);
    if (i + kStage2Depth < count) prefetch_stage2(*packets[i + kStage2Depth]);
    handle_egress(std::move(packets[i]));
  }
}

void AcdcVswitch::handle_ingress_burst(net::PacketPtr* packets,
                                       std::size_t count) {
  process_burst(packets, count);
}

net::PacketPtr AcdcVswitch::craft_ack_toward_vm(const FlowRef& f) const {
  // Build an ACK as the remote end would have sent it for data flow
  // *f.key (so it arrives "from" the receiver).
  auto p = net::make_packet();
  p->ip.src = f.key->dst_ip;
  p->ip.dst = f.key->src_ip;
  p->tcp.src_port = f.key->dst_port;
  p->tcp.dst_port = f.key->src_port;
  p->tcp.flags.ack = true;
  p->tcp.seq = 0;  // pure ACK; sequence is not meaningful for window updates
  p->tcp.ack_seq = f.hot->last_ack_seq;
  p->tcp.window_raw = f.hot->last_ack_raw_window;
  return p;
}

bool AcdcVswitch::send_window_update(const FlowKey& key) {
  FlowRef f = core_.table.find(key);
  if (!f || !f.hot->ack_seen) return false;
  net::PacketPtr p = craft_ack_toward_vm(f);
  const std::uint8_t scale =
      f.hot->peer_wscale_valid ? f.hot->peer_wscale : 0;
  std::int64_t raw = f.hot->last_enforced_rwnd >= 0
                         ? f.hot->last_enforced_rwnd >> scale
                         : f.hot->last_ack_raw_window;
  if (raw <= 0) raw = 1;
  p->tcp.window_raw =
      static_cast<std::uint16_t>(std::min<std::int64_t>(raw, 65535));
  ++core_.stats.injected_window_updates;
  if (core_.tracing()) {
    obs::TraceEvent te =
        core_.flow_event(obs::EventType::kWindowUpdateInjected, key);
    te.a = p->tcp.window_raw;
    core_.trace->record(te);
  }
  send_up(std::move(p));
  return true;
}

bool AcdcVswitch::send_dupacks(const FlowKey& key, int count) {
  FlowRef f = core_.table.find(key);
  if (!f || !f.hot->ack_seen) return false;
  for (int i = 0; i < count; ++i) {
    net::PacketPtr p = craft_ack_toward_vm(f);
    // A dupACK must repeat snd_una and the last advertised window exactly.
    p->tcp.ack_seq = f.hot->snd_una;
    ++core_.stats.injected_dupacks;
    send_up(std::move(p));
  }
  if (core_.tracing()) {
    obs::TraceEvent te =
        core_.flow_event(obs::EventType::kDupackInjected, key);
    te.a = count;
    core_.trace->record(te);
  }
  return true;
}

void AcdcVswitch::attach_observability(ObsHooks hooks) {
  core_.trace = hooks.recorder;
  core_.trace_source = hooks.recorder != nullptr
                           ? hooks.recorder->register_source(hooks.name)
                           : 0;
  // An empty on_window means "no opinion": re-attaching recorder/metrics
  // (e.g. Scenario::enable_tracing) must not silently drop a callback a
  // caller installed earlier.
  if (hooks.on_window) core_.on_window = std::move(hooks.on_window);
  if (hooks.metrics != nullptr) register_metrics(*hooks.metrics, hooks.name);
}

void AcdcVswitch::register_metrics(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
  const AcdcStats& s = core_.stats;
  registry.register_counter(prefix + ".egress_data_packets",
                            &s.egress_data_packets);
  registry.register_counter(prefix + ".ingress_data_packets",
                            &s.ingress_data_packets);
  registry.register_counter(prefix + ".acks_processed", &s.acks_processed);
  registry.register_counter(prefix + ".packs_attached", &s.packs_attached);
  registry.register_counter(prefix + ".facks_sent", &s.facks_sent);
  registry.register_counter(prefix + ".facks_consumed", &s.facks_consumed);
  registry.register_counter(prefix + ".windows_lowered", &s.windows_lowered);
  registry.register_counter(prefix + ".policed_drops", &s.policed_drops);
  registry.register_counter(prefix + ".inferred_timeouts",
                            &s.inferred_timeouts);
  registry.register_counter(prefix + ".injected_dupacks",
                            &s.injected_dupacks);
  registry.register_counter(prefix + ".injected_window_updates",
                            &s.injected_window_updates);
  registry.register_counter(prefix + ".rtt_samples", &s.rtt_samples);
  registry.register_counter(prefix + ".flow_cache_hits", &s.flow_cache_hits);
  registry.register_counter(prefix + ".flow_cache_misses",
                            &s.flow_cache_misses);
  registry.register_gauge(prefix + ".flow_entries", [this] {
    return static_cast<double>(core_.table.size());
  });
  // Flow-table lifecycle counters: under churn these are the signals that
  // per-flow state stays bounded (gc/evictions climbing, entries flat).
  const FlowTable::Stats& ft = core_.table.stats();
  registry.register_counter(prefix + ".flow_inserts", &ft.inserts);
  registry.register_counter(prefix + ".flow_removals", &ft.removals);
  registry.register_counter(prefix + ".flow_gc_removed", &ft.gc_removed);
  registry.register_counter(prefix + ".flow_evictions", &ft.evictions);
  registry.register_counter(prefix + ".flow_admission_rejects",
                            &ft.admission_rejects);
  registry.register_counter(prefix + ".flow_rehashes", &ft.rehashes);
}

}  // namespace acdc::vswitch
