// Per-flow congestion-control policy (§2.2, §3.4): which virtual algorithm a
// flow runs, its QoS priority beta (Eq. 1), an optional RWND cap (bandwidth
// upper bound), and whether non-conforming senders are policed.
#pragma once

#include <cstdint>
#include <vector>

#include "acdc/flow_key.h"

namespace acdc::vswitch {

enum class VccKind : std::uint8_t {
  kDctcp,    // the paper's vSwitch algorithm (Fig. 5 / Eq. 1)
  kReno,     // virtual NewReno (shows §3.1 generalises)
  kCubic,    // e.g. for WAN-bound flows (§3.4)
  kPowerTcp, // INT-telemetry power control (arxiv 2112.14309)
  kFairRate, // switch-assisted fair-rate enforcement (arxiv 2106.14100)
};

const char* to_string(VccKind kind);

struct FlowPolicy {
  VccKind kind = VccKind::kDctcp;
  // QoS priority in [0, 1]; 1.0 degenerates to plain DCTCP (Eq. 1).
  double beta = 1.0;
  // Static upper bound on the enforced window; 0 = none (Fig. 6).
  std::int64_t max_rwnd_bytes = 0;
  // Drop packets sent beyond the enforced window (§3.3 policing).
  bool police = false;
};

// First-match rule list over the flow's destination, with a default policy.
// The paper's example: WAN-destined flows get CUBIC, intra-DC flows DCTCP.
class PolicyEngine {
 public:
  void set_default(const FlowPolicy& policy) { default_ = policy; }
  const FlowPolicy& default_policy() const { return default_; }

  // Matches (dst_ip & mask) == prefix.
  void add_dst_subnet_rule(net::IpAddr prefix, net::IpAddr mask,
                           const FlowPolicy& policy);
  void add_dst_port_rule(net::TcpPort port, const FlowPolicy& policy);

  FlowPolicy lookup(const FlowKey& key) const;

  std::size_t rule_count() const { return rules_.size(); }

 private:
  struct Rule {
    bool match_subnet = false;
    net::IpAddr prefix = 0;
    net::IpAddr mask = 0;
    bool match_port = false;
    net::TcpPort port = 0;
    FlowPolicy policy;
  };

  FlowPolicy default_;
  std::vector<Rule> rules_;
};

}  // namespace acdc::vswitch
