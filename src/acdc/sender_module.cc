#include "acdc/sender_module.h"

#include <algorithm>

#include "acdc/feedback.h"
#include "tcp/seq.h"

namespace acdc::vswitch {

using tcp::seq_ge;
using tcp::seq_gt;
using tcp::seq_lt;
using tcp::seq_max;

void SenderModule::learn_from_egress_syn(FlowEntry& entry,
                                         const net::Packet& syn) {
  SenderFlowState& s = entry.snd;
  if (syn.tcp.options.mss) {
    s.mss = *syn.tcp.options.mss;
    virtual_cc_for(entry.policy.kind).init(s, core_.config.vcc);
  }
  s.vm_requested_ecn = syn.tcp.flags.ece && syn.tcp.flags.cwr;
}

void SenderModule::learn_from_ingress_synack(FlowEntry& entry,
                                             const net::Packet& synack) {
  SenderFlowState& s = entry.snd;
  if (synack.tcp.options.window_scale) {
    s.peer_wscale = *synack.tcp.options.window_scale;
    s.peer_wscale_valid = true;
  }
  if (synack.tcp.options.mss) {
    s.mss = std::min<std::uint32_t>(s.mss, *synack.tcp.options.mss);
    virtual_cc_for(entry.policy.kind).init(s, core_.config.vcc);
  }
  s.vm_ecn_negotiated = s.vm_requested_ecn && synack.tcp.flags.ece;
}

void SenderModule::track_sequences(FlowEntry& entry,
                                   const net::Packet& packet) {
  SenderFlowState& s = entry.snd;
  const std::uint32_t span =
      static_cast<std::uint32_t>(packet.payload_bytes) +
      (packet.tcp.flags.syn ? 1 : 0) + (packet.tcp.flags.fin ? 1 : 0);
  if (span == 0) return;
  const tcp::Seq seq_end = packet.tcp.seq + span;
  if (!s.seq_valid) {
    s.snd_una = packet.tcp.seq;
    s.snd_nxt = seq_end;
    s.seq_valid = true;
  } else {
    s.snd_nxt = seq_max(s.snd_nxt, seq_end);
  }
}

std::int64_t SenderModule::enforced_window_bytes(
    const FlowEntry& entry) const {
  std::int64_t wnd = static_cast<std::int64_t>(entry.snd.cwnd_bytes);
  if (entry.policy.max_rwnd_bytes > 0) {
    wnd = std::min(wnd, entry.policy.max_rwnd_bytes);
  }
  return std::max(wnd, core_.min_rwnd_bytes(entry.snd));
}

bool SenderModule::police(FlowEntry& entry, const net::Packet& packet) {
  if (!entry.policy.police || !core_.config.enforce) return true;
  const SenderFlowState& s = entry.snd;
  if (!s.seq_valid || packet.payload_bytes == 0) return true;
  const std::uint32_t span = static_cast<std::uint32_t>(packet.payload_bytes);
  const tcp::Seq seq_end = packet.tcp.seq + span;
  // Retransmissions (at or below snd_nxt) are always allowed.
  if (tcp::seq_le(seq_end, s.snd_nxt)) return true;
  const std::int64_t slack = static_cast<std::int64_t>(
      core_.config.police_slack_mss * static_cast<double>(s.mss));
  const std::int64_t allowed =
      std::max<std::int64_t>(enforced_window_bytes(entry) + slack,
                             static_cast<std::int64_t>(
                                 core_.config.vcc.initial_cwnd_packets *
                                 static_cast<double>(s.mss)));
  const tcp::Seq allowed_end =
      s.snd_una + static_cast<std::uint32_t>(allowed);
  if (seq_gt(seq_end, allowed_end)) {
    ++core_.stats.policed_drops;
    if (core_.tracing()) {
      obs::TraceEvent ev =
          core_.flow_event(obs::EventType::kPolicedDrop, entry.key);
      ev.a = packet.payload_bytes;
      ev.b = allowed;
      core_.trace->record(ev);
    }
    return false;
  }
  return true;
}

bool SenderModule::process_egress(net::Packet& packet) {
  FlowEntry* entry_ptr =
      core_.entry(FlowKey::from_packet(packet), AcdcCore::kCacheSndEgress);
  if (entry_ptr == nullptr) {
    // Admission rejected at the flow-table cap: the flow is unmanaged —
    // no tracking and no policing, but the packet still flows.
    if (packet.payload_bytes > 0) ++core_.stats.egress_data_packets;
    return true;
  }
  FlowEntry& entry = *entry_ptr;
  core_.table.touch(entry, core_.sim->now());

  if (packet.tcp.flags.syn && !packet.tcp.flags.ack && entry.fin_seen) {
    // Recycled 4-tuple: the previous incarnation FINished but its entry
    // still lingers (GC hasn't swept it). §3.1 allocates flow state on SYN,
    // so a fresh SYN restarts the entry from scratch rather than inheriting
    // stale sequence/CC state.
    core_.reset_entry(entry);
  }

  if (packet.tcp.flags.syn) {
    learn_from_egress_syn(entry, packet);
    // Repurposed reserved bit: tell the remote vSwitch whether this VM's
    // stack itself negotiated ECN (§3.2).
    packet.tcp.reserved_vm_ecn = entry.snd.vm_requested_ecn;
  }
  // FIN and RST both end the flow; either marks the entry for the GC's
  // short fin_linger path (§3.1: state deallocated on FIN or inactivity).
  if (packet.tcp.flags.fin || packet.tcp.flags.rst) entry.fin_seen = true;

  // Police against the window *before* admitting the packet's sequence
  // range into snd_nxt (otherwise everything looks like a retransmission).
  if (!police(entry, packet)) return false;

  track_sequences(entry, packet);

  if (packet.payload_bytes > 0) ++core_.stats.egress_data_packets;
  return true;
}

bool SenderModule::process_ingress_ack(net::Packet& packet) {
  // This ACK acknowledges the reverse flow: data we sent.
  FlowEntry* entry_ptr = core_.entry(FlowKey::from_packet(packet).reversed(),
                                     AcdcCore::kCacheSndIngressAck);
  if (entry_ptr == nullptr) {
    // Unmanaged flow (admission rejected): keep the VM-transparency
    // contract anyway — FACKs never reach the VM and ECN feedback stays
    // hidden — but skip tracking, virtual CC and enforcement.
    if (packet.acdc_fack) {
      ++core_.stats.facks_consumed;
      return false;
    }
    consume_feedback(packet);  // strip any piggybacked PACK option
    packet.telem.reset();      // and any INT stamp from the reverse path
    if (core_.config.hide_ecn_feedback) packet.tcp.flags.ece = false;
    return true;
  }
  FlowEntry& entry = *entry_ptr;
  core_.table.touch(entry, core_.sim->now());
  SenderFlowState& s = entry.snd;
  ++core_.stats.acks_processed;

  if (packet.tcp.flags.syn) {
    learn_from_ingress_synack(entry, packet);
  }

  // ---- Feedback extraction (PACK strip / FACK consume, §3.2) ----
  std::int64_t fb_total_delta = 0;
  std::int64_t fb_marked_delta = 0;
  bool fb_telemetry = false;
  net::TelemetryStamp fb_telem;
  if (auto fb = consume_feedback(packet)) {
    // Feedback carries running totals, so a reordered PACK/FACK can report
    // values older than what we already consumed. Serial comparison (the
    // totals wrap mod 2^32) spots the regression; applying it would wrap
    // the deltas to ~2^32 and blow up the marked fraction.
    const bool stale =
        s.fb_valid &&
        (static_cast<std::int32_t>(fb->total_bytes - s.fb_total) < 0 ||
         static_cast<std::int32_t>(fb->marked_bytes - s.fb_marked) < 0);
    if (!stale) {
      fb_total_delta =
          static_cast<std::uint32_t>(fb->total_bytes - s.fb_total);
      fb_marked_delta =
          static_cast<std::uint32_t>(fb->marked_bytes - s.fb_marked);
      s.fb_total = fb->total_bytes;
      s.fb_marked = fb->marked_bytes;
      s.fb_valid = true;
      if (fb->telemetry) {
        fb_telemetry = true;
        fb_telem = fb->telem;
      }
    }
  }

  // ---- Connection-tracking update (§3.1) ----
  VccEvent ev;
  ev.now = core_.sim->now();
  ev.fb_total_delta = fb_total_delta;
  ev.fb_marked_delta = fb_marked_delta;
  if (fb_telemetry) {
    ev.telemetry = true;
    ev.qlen_bytes = fb_telem.qlen_bytes;
    ev.tx_bytes_per_ms = fb_telem.tx_bytes_per_ms;
    ev.fair_bytes_per_ms = fb_telem.fair_bytes_per_ms;
    ev.ts_us = fb_telem.ts_us;
  }
  const tcp::Seq ack = packet.tcp.ack_seq;
  if (!s.seq_valid) {
    // Mid-flow adoption: bootstrap from the ACK itself.
    s.snd_una = ack;
    s.snd_nxt = seq_max(s.snd_nxt, ack);
    s.seq_valid = true;
  } else if (seq_gt(ack, s.snd_una) && tcp::seq_le(ack, s.snd_nxt)) {
    ev.acked_bytes = static_cast<std::uint32_t>(ack - s.snd_una);
    s.snd_una = ack;
    s.dupacks = 0;
  } else if (ack == s.snd_una && s.snd_nxt != s.snd_una &&
             packet.is_pure_ack() && !packet.acdc_fack) {
    ++s.dupacks;
    ev.dupack = true;
    ev.dupacks = s.dupacks;
  }

  // ---- Virtual congestion control (Fig. 5) ----
  if (!packet.tcp.flags.syn) {
    const double cwnd_before = s.cwnd_bytes;
    const double alpha_before = s.alpha;
    virtual_cc_for(entry.policy.kind)
        .on_ack(s, entry.policy, core_.config.vcc, ev);
    if (core_.tracing()) {
      if (s.alpha != alpha_before) {
        obs::TraceEvent te =
            core_.flow_event(obs::EventType::kAlphaUpdate, entry.key);
        te.a = fb_marked_delta;
        te.b = fb_total_delta;
        te.x = s.alpha;
        core_.trace->record(te);
      }
      if (s.cwnd_bytes != cwnd_before) {
        obs::TraceEvent te =
            core_.flow_event(obs::EventType::kCwndUpdate, entry.key);
        te.a = static_cast<std::int64_t>(s.cwnd_bytes);
        te.b = static_cast<std::int64_t>(s.ssthresh_bytes);
        te.x = s.alpha;
        core_.trace->record(te);
      }
    }
  }

  if (packet.acdc_fack) {
    ++core_.stats.facks_consumed;
    if (core_.tracing()) {
      obs::TraceEvent te =
          core_.flow_event(obs::EventType::kFackConsumed, entry.key);
      te.a = fb_total_delta;
      te.b = fb_marked_delta;
      core_.trace->record(te);
    }
    return false;  // FACKs never reach the VM
  }

  // ---- Enforcement (§3.3) ----
  if (!packet.tcp.flags.syn) enforce_window(entry, packet);

  if (core_.config.hide_ecn_feedback) packet.tcp.flags.ece = false;
  packet.telem.reset();  // INT stamps never cross into the VM

  // Template for §3.3 injection; SYN-ACK windows have different (unscaled)
  // semantics, so only real ACKs qualify.
  if (!packet.tcp.flags.syn) {
    s.last_ack_seq = packet.tcp.ack_seq;
    s.last_ack_raw_window = packet.tcp.window_raw;
    s.ack_seen = true;
  }
  return true;
}

void SenderModule::enforce_window(FlowEntry& entry, net::Packet& ack) {
  const std::int64_t wnd = enforced_window_bytes(entry);
  entry.snd.last_enforced_rwnd = wnd;
  core_.emit_window_enforced(entry, wnd);
  if (!core_.config.enforce) return;
  const std::uint8_t scale =
      entry.snd.peer_wscale_valid ? entry.snd.peer_wscale : 0;
  // Round up so the effective window never falls below the computed one
  // (flooring could leave the VM unable to send even a single MSS).
  std::int64_t raw = (wnd + (std::int64_t{1} << scale) - 1) >> scale;
  if (raw == 0) raw = 1;  // never freeze the flow entirely
  if (raw < static_cast<std::int64_t>(ack.tcp.window_raw)) {
    if (core_.tracing()) {
      obs::TraceEvent te =
          core_.flow_event(obs::EventType::kRwndClamped, entry.key);
      te.a = wnd;
      te.b = static_cast<std::int64_t>(ack.tcp.window_raw) << scale;
      core_.trace->record(te);
    }
    ack.tcp.window_raw = static_cast<std::uint16_t>(raw);
    ++core_.stats.windows_lowered;
  }
}

int SenderModule::infer_timeouts(sim::Time now) {
  int fired = 0;
  core_.table.for_each([&](FlowEntry& entry) {
    SenderFlowState& s = entry.snd;
    if (!s.seq_valid || !seq_lt(s.snd_una, s.snd_nxt)) return;
    if (now - entry.last_activity < core_.config.inactivity_timeout) return;
    if (s.last_timeout_at != sim::kNoTime &&
        s.last_timeout_at >= entry.last_activity) {
      return;  // already reacted to this stall
    }
    s.last_timeout_at = now;
    virtual_cc_for(entry.policy.kind).on_timeout(s, core_.config.vcc);
    ++core_.stats.inferred_timeouts;
    if (core_.tracing()) {
      obs::TraceEvent te =
          core_.flow_event(obs::EventType::kTimeoutInferred, entry.key);
      te.a = static_cast<std::int64_t>(s.cwnd_bytes);
      te.b = now - entry.last_activity;
      core_.trace->record(te);
    }
    ++fired;
  });
  return fired;
}

}  // namespace acdc::vswitch
