#include "acdc/sender_module.h"

#include <algorithm>

#include "acdc/feedback.h"
#include "tcp/seq.h"

namespace acdc::vswitch {

using tcp::seq_ge;
using tcp::seq_gt;
using tcp::seq_lt;
using tcp::seq_max;

void SenderModule::learn_from_egress_syn(const FlowRef& f,
                                         const net::Packet& syn) {
  FlowHot& s = *f.hot;
  if (syn.tcp.options.mss) {
    s.mss = *syn.tcp.options.mss;
    virtual_cc_for(s.cc_kind).init(s, core_.config.vcc);
  }
  s.vm_requested_ecn = syn.tcp.flags.ece && syn.tcp.flags.cwr;
}

void SenderModule::learn_from_ingress_synack(const FlowRef& f,
                                             const net::Packet& synack) {
  FlowHot& s = *f.hot;
  if (synack.tcp.options.window_scale) {
    s.peer_wscale = *synack.tcp.options.window_scale;
    s.peer_wscale_valid = true;
  }
  if (synack.tcp.options.mss) {
    s.mss = std::min<std::uint32_t>(s.mss, *synack.tcp.options.mss);
    virtual_cc_for(s.cc_kind).init(s, core_.config.vcc);
  }
  s.vm_ecn_negotiated = s.vm_requested_ecn && synack.tcp.flags.ece;
}

void SenderModule::track_sequences(FlowHot& s, const net::Packet& packet,
                                   sim::Time now) {
  const std::uint32_t span =
      static_cast<std::uint32_t>(packet.payload_bytes) +
      (packet.tcp.flags.syn ? 1 : 0) + (packet.tcp.flags.fin ? 1 : 0);
  if (span == 0) return;
  const tcp::Seq seq_end = packet.tcp.seq + span;
  // One RTT sample in flight at a time (RFC 6298 needs no more), armed only
  // on *new* data — handshake segments are excluded so the estimator tracks
  // the data path the virtual CC actually schedules.
  const bool sampleable = packet.payload_bytes > 0 && !packet.tcp.flags.syn;
  if (!s.seq_valid) {
    s.snd_una = packet.tcp.seq;
    s.snd_nxt = seq_end;
    s.seq_valid = true;
    if (sampleable) {
      s.rtt_sample_pending = true;
      s.rtt_sample_end = seq_end;
      s.rtt_sample_sent_at = now;
    }
    return;
  }
  if (seq_gt(seq_end, s.snd_nxt)) {
    s.snd_nxt = seq_max(s.snd_nxt, seq_end);
    if (sampleable && !s.rtt_sample_pending) {
      s.rtt_sample_pending = true;
      s.rtt_sample_end = seq_end;
      s.rtt_sample_sent_at = now;
    }
    return;
  }
  // Retransmission into the sampled range: Karn's rule — the eventual ACK
  // could match either transmission, so the measurement is void.
  if (s.rtt_sample_pending && seq_lt(packet.tcp.seq, s.rtt_sample_end)) {
    s.rtt_sample_pending = false;
  }
}

std::int64_t SenderModule::enforced_window_bytes(const FlowHot& s) const {
  std::int64_t wnd = static_cast<std::int64_t>(s.cwnd_bytes);
  if (s.max_rwnd_bytes > 0) {
    wnd = std::min(wnd, static_cast<std::int64_t>(s.max_rwnd_bytes));
  }
  return std::max(wnd, core_.min_rwnd_bytes(s));
}

bool SenderModule::police(const FlowRef& f, const net::Packet& packet) {
  const FlowHot& s = *f.hot;
  if (!s.police || !core_.config.enforce) return true;
  if (!s.seq_valid || packet.payload_bytes == 0) return true;
  const std::uint32_t span = static_cast<std::uint32_t>(packet.payload_bytes);
  const tcp::Seq seq_end = packet.tcp.seq + span;
  // Retransmissions (at or below snd_nxt) are always allowed.
  if (tcp::seq_le(seq_end, s.snd_nxt)) return true;
  const std::int64_t slack = static_cast<std::int64_t>(
      core_.config.police_slack_mss * static_cast<double>(s.mss));
  const std::int64_t allowed =
      std::max<std::int64_t>(enforced_window_bytes(s) + slack,
                             static_cast<std::int64_t>(
                                 core_.config.vcc.initial_cwnd_packets *
                                 static_cast<double>(s.mss)));
  const tcp::Seq allowed_end =
      s.snd_una + static_cast<std::uint32_t>(allowed);
  if (seq_gt(seq_end, allowed_end)) {
    ++core_.stats.policed_drops;
    if (core_.tracing()) {
      obs::TraceEvent ev =
          core_.flow_event(obs::EventType::kPolicedDrop, *f.key);
      ev.a = packet.payload_bytes;
      ev.b = allowed;
      core_.trace->record(ev);
    }
    return false;
  }
  return true;
}

bool SenderModule::process_egress(net::Packet& packet) {
  FlowRef f =
      core_.entry(FlowKey::from_packet(packet), AcdcCore::kCacheSndEgress);
  if (!f) {
    // Admission rejected at the flow-table cap: the flow is unmanaged —
    // no tracking and no policing, but the packet still flows.
    if (packet.payload_bytes > 0) ++core_.stats.egress_data_packets;
    return true;
  }
  const sim::Time now = core_.sim->now();
  core_.table.touch(f, now);
  FlowHot& s = *f.hot;

  if (packet.tcp.flags.syn && !packet.tcp.flags.ack && s.fin_seen) {
    // Recycled 4-tuple: the previous incarnation FINished but its entry
    // still lingers (GC hasn't swept it). §3.1 allocates flow state on SYN,
    // so a fresh SYN restarts the entry from scratch rather than inheriting
    // stale sequence/CC state.
    core_.reset_entry(f);
  }

  if (packet.tcp.flags.syn) {
    learn_from_egress_syn(f, packet);
    // Repurposed reserved bit: tell the remote vSwitch whether this VM's
    // stack itself negotiated ECN (§3.2).
    packet.tcp.reserved_vm_ecn = s.vm_requested_ecn;
  }
  // FIN and RST both end the flow; either marks the entry for the GC's
  // short fin_linger path (§3.1: state deallocated on FIN or inactivity).
  if (packet.tcp.flags.fin || packet.tcp.flags.rst) s.fin_seen = true;

  // Police against the window *before* admitting the packet's sequence
  // range into snd_nxt (otherwise everything looks like a retransmission).
  if (!police(f, packet)) return false;

  track_sequences(s, packet, now);

  if (packet.payload_bytes > 0) ++core_.stats.egress_data_packets;
  return true;
}

bool SenderModule::process_ingress_ack(net::Packet& packet) {
  // This ACK acknowledges the reverse flow: data we sent.
  FlowRef f = core_.entry(FlowKey::from_packet(packet).reversed(),
                          AcdcCore::kCacheSndIngressAck);
  if (!f) {
    // Unmanaged flow (admission rejected): keep the VM-transparency
    // contract anyway — FACKs never reach the VM and ECN feedback stays
    // hidden — but skip tracking, virtual CC and enforcement.
    if (packet.acdc_fack) {
      ++core_.stats.facks_consumed;
      return false;
    }
    consume_feedback(packet);  // strip any piggybacked PACK option
    packet.telem.reset();      // and any INT stamp from the reverse path
    if (core_.config.hide_ecn_feedback) packet.tcp.flags.ece = false;
    return true;
  }
  core_.table.touch(f, core_.sim->now());
  FlowHot& s = *f.hot;
  ++core_.stats.acks_processed;

  if (packet.tcp.flags.syn) {
    learn_from_ingress_synack(f, packet);
  }

  // ---- Feedback extraction (PACK strip / FACK consume, §3.2) ----
  std::int64_t fb_total_delta = 0;
  std::int64_t fb_marked_delta = 0;
  bool fb_telemetry = false;
  net::TelemetryStamp fb_telem;
  if (auto fb = consume_feedback(packet)) {
    // Feedback carries running totals, so a reordered PACK/FACK can report
    // values older than what we already consumed. Serial comparison (the
    // totals wrap mod 2^32) spots the regression; applying it would wrap
    // the deltas to ~2^32 and blow up the marked fraction.
    const bool stale =
        s.fb_valid &&
        (static_cast<std::int32_t>(fb->total_bytes - s.fb_total) < 0 ||
         static_cast<std::int32_t>(fb->marked_bytes - s.fb_marked) < 0);
    if (!stale) {
      fb_total_delta =
          static_cast<std::uint32_t>(fb->total_bytes - s.fb_total);
      fb_marked_delta =
          static_cast<std::uint32_t>(fb->marked_bytes - s.fb_marked);
      // Baseline resync: the receiver's totals are running counters that
      // restart from zero when its vSwitch evicts the flow entry under cap
      // pressure (§4). Once the new incarnation's totals grow past our old
      // baseline the stale test stops firing, but the two deltas straddle
      // the restart and can disagree — up to reporting more newly-marked
      // than newly-sent bytes, which would push the DCTCP fraction (and
      // eventually alpha) above 1. Marked can never exceed total within one
      // receiver incarnation, so clamp and count the resync.
      if (fb_marked_delta > fb_total_delta) {
        fb_marked_delta = fb_total_delta;
        ++core_.stats.feedback_resyncs;
      }
      s.fb_total = fb->total_bytes;
      s.fb_marked = fb->marked_bytes;
      s.fb_valid = true;
      if (fb->telemetry) {
        fb_telemetry = true;
        fb_telem = fb->telem;
      }
    }
  }

  // ---- Connection-tracking update (§3.1) ----
  VccEvent ev;
  ev.now = core_.sim->now();
  ev.fb_total_delta = fb_total_delta;
  ev.fb_marked_delta = fb_marked_delta;
  if (fb_telemetry) {
    ev.telemetry = true;
    ev.qlen_bytes = fb_telem.qlen_bytes;
    ev.tx_bytes_per_ms = fb_telem.tx_bytes_per_ms;
    ev.fair_bytes_per_ms = fb_telem.fair_bytes_per_ms;
    ev.ts_us = fb_telem.ts_us;
  }
  const tcp::Seq ack = packet.tcp.ack_seq;
  if (!s.seq_valid) {
    // Mid-flow adoption: bootstrap from the ACK itself.
    s.snd_una = ack;
    s.snd_nxt = seq_max(s.snd_nxt, ack);
    s.seq_valid = true;
  } else if (seq_gt(ack, s.snd_una) && tcp::seq_le(ack, s.snd_nxt)) {
    ev.acked_bytes = static_cast<std::uint32_t>(ack - s.snd_una);
    s.snd_una = ack;
    s.dupacks = 0;
    // ---- RTT sample completion (RFC 6298) ----
    if (s.rtt_sample_pending && seq_ge(ack, s.rtt_sample_end)) {
      s.rtt_sample_pending = false;
      const sim::Time elapsed = ev.now - s.rtt_sample_sent_at;
      s.rtt.on_sample(
          static_cast<std::uint32_t>(sim::to_microseconds(elapsed)));
      s.rto_backoff = 0;  // fresh evidence the path is alive
      ++core_.stats.rtt_samples;
    }
  } else if (ack == s.snd_una && s.snd_nxt != s.snd_una &&
             packet.is_pure_ack() && !packet.acdc_fack) {
    ++s.dupacks;
    ev.dupack = true;
    ev.dupacks = s.dupacks;
  }
  // Measured per-flow base RTT feeds the telemetry-driven CCs as τ; before
  // the first sample they fall back to the configured fabric estimate.
  if (s.rtt.min_rtt_us > 0) {
    ev.base_rtt_us = static_cast<double>(s.rtt.min_rtt_us);
  }

  // ---- Virtual congestion control (Fig. 5) ----
  if (!packet.tcp.flags.syn) {
    const bool tracing = core_.tracing();
    const double cwnd_before = s.cwnd_bytes;
    // Only snapshot alpha when it will be compared: it lives on the flow
    // record's per-window line, which the steady-state ACK path otherwise
    // never has to pull in.
    const double alpha_before = tracing ? s.alpha : 0.0;
    virtual_cc_for(s.cc_kind).on_ack(s, core_.config.vcc, ev);
    if (tracing) {
      if (s.alpha != alpha_before) {
        obs::TraceEvent te =
            core_.flow_event(obs::EventType::kAlphaUpdate, *f.key);
        te.a = fb_marked_delta;
        te.b = fb_total_delta;
        te.x = s.alpha;
        core_.trace->record(te);
      }
      if (s.cwnd_bytes != cwnd_before) {
        obs::TraceEvent te =
            core_.flow_event(obs::EventType::kCwndUpdate, *f.key);
        te.a = static_cast<std::int64_t>(s.cwnd_bytes);
        te.b = static_cast<std::int64_t>(s.ssthresh_bytes);
        te.x = s.alpha;
        core_.trace->record(te);
      }
    }
  }

  if (packet.acdc_fack) {
    ++core_.stats.facks_consumed;
    if (core_.tracing()) {
      obs::TraceEvent te =
          core_.flow_event(obs::EventType::kFackConsumed, *f.key);
      te.a = fb_total_delta;
      te.b = fb_marked_delta;
      core_.trace->record(te);
    }
    return false;  // FACKs never reach the VM
  }

  // ---- Enforcement (§3.3) ----
  if (!packet.tcp.flags.syn) enforce_window(f, packet);

  if (core_.config.hide_ecn_feedback) packet.tcp.flags.ece = false;
  packet.telem.reset();  // INT stamps never cross into the VM

  // Template for §3.3 injection; SYN-ACK windows have different (unscaled)
  // semantics, so only real ACKs qualify.
  if (!packet.tcp.flags.syn) {
    s.last_ack_seq = packet.tcp.ack_seq;
    s.last_ack_raw_window = packet.tcp.window_raw;
    s.ack_seen = true;
  }
  return true;
}

void SenderModule::enforce_window(const FlowRef& f, net::Packet& ack) {
  FlowHot& s = *f.hot;
  const std::int64_t wnd = enforced_window_bytes(s);
  // Saturating narrow: the record keeps 32 bits, and a wire window can
  // never exceed 2^30, so the clamp only ever bites on an uncapped cwnd
  // the ACK rewrite would have clipped to 65535 << wscale anyway.
  s.last_enforced_rwnd = static_cast<std::int32_t>(
      std::min<std::int64_t>(wnd, INT32_MAX));
  core_.emit_window_enforced(f, wnd);
  if (!core_.config.enforce) return;
  const std::uint8_t scale = s.peer_wscale_valid ? s.peer_wscale : 0;
  // Round up so the effective window never falls below the computed one
  // (flooring could leave the VM unable to send even a single MSS).
  std::int64_t raw = (wnd + (std::int64_t{1} << scale) - 1) >> scale;
  if (raw == 0) raw = 1;  // never freeze the flow entirely
  if (raw < static_cast<std::int64_t>(ack.tcp.window_raw)) {
    if (core_.tracing()) {
      obs::TraceEvent te =
          core_.flow_event(obs::EventType::kRwndClamped, *f.key);
      te.a = wnd;
      te.b = static_cast<std::int64_t>(ack.tcp.window_raw) << scale;
      core_.trace->record(te);
    }
    ack.tcp.window_raw = static_cast<std::uint16_t>(raw);
    ++core_.stats.windows_lowered;
  }
}

int SenderModule::infer_timeouts(sim::Time now) {
  int fired = 0;
  core_.table.for_each([&](const FlowRef& f) {
    FlowHot& s = *f.hot;
    if (!s.seq_valid || !seq_lt(s.snd_una, s.snd_nxt)) return;
    // Per-flow RTO once the estimator has a sample (clamped to the
    // configured bounds); the fixed inactivity timeout is the sample-less
    // fallback for flows that stalled before any data round trip.
    sim::Time threshold = core_.config.inactivity_timeout;
    if (s.rtt.valid()) {
      threshold = std::clamp(
          sim::microseconds(
              static_cast<sim::Time>(s.rtt.rto_us(s.rto_backoff))),
          core_.config.min_rto, core_.config.max_rto);
    }
    if (now - s.last_activity < threshold) return;
    if (f.cold->last_timeout_at != sim::kNoTime &&
        f.cold->last_timeout_at >= s.last_activity) {
      return;  // already reacted to this stall
    }
    f.cold->last_timeout_at = now;
    if (s.rto_backoff < 15) ++s.rto_backoff;  // exponential RTO backoff
    s.rtt_sample_pending = false;  // Karn: the stalled segment will be
                                   // retransmitted by the VM
    virtual_cc_for(s.cc_kind).on_timeout(s, core_.config.vcc);
    ++core_.stats.inferred_timeouts;
    if (core_.tracing()) {
      obs::TraceEvent te =
          core_.flow_event(obs::EventType::kTimeoutInferred, *f.key);
      te.a = static_cast<std::int64_t>(s.cwnd_bytes);
      te.b = now - s.last_activity;
      core_.trace->record(te);
    }
    ++fired;
  });
  return fired;
}

}  // namespace acdc::vswitch
