// The AC/DC vSwitch datapath: a DuplexFilter sitting between the tenant TCP
// stack and the NIC (Fig. 3). Every packet is matched against the flow
// table; the sender and receiver modules implement §3's design:
//
//   egress:  [sender] track seqs, mark ECT, police  ->
//            [receiver] attach PACK / emit FACK      -> NIC
//   ingress: [receiver] count + strip ECN            ->
//            [sender] feedback, virtual CC, RWND enforcement -> VM
//
// Also hosts the periodic inactivity scan (timeout inference, §3.1), the
// flow-table garbage collector (§4) and the §3.3 flexibility features
// (vSwitch-generated window updates and duplicate ACKs).
#pragma once

#include <cassert>
#include <memory>
#include <string>

#include "acdc/core.h"
#include "acdc/receiver_module.h"
#include "acdc/sender_module.h"
#include "net/datapath.h"
#include "sim/simulator.h"

namespace acdc::vswitch {

class AcdcVswitch : public net::DuplexFilter {
 public:
  AcdcVswitch(sim::Simulator* sim, AcdcConfig config);

  AcdcCore& core() { return core_; }
  const AcdcConfig& config() const { return core_.config; }
  PolicyEngine& policy() { return core_.policy; }
  FlowTable& flows() { return core_.table; }
  const AcdcStats& stats() const { return core_.stats; }

  // Bundled observability wiring. One call replaces the old set_trace /
  // register_metrics / set_window_observer trio so a vSwitch is instrumented
  // atomically: trace events and metrics share `name`, and the legacy
  // window callback is fed from the same emission point as the recorder's
  // kWindowEnforced event (AcdcCore::emit_window_enforced).
  struct ObsHooks {
    obs::FlightRecorder* recorder = nullptr;  // nullptr = tracing off
    obs::MetricsRegistry* metrics = nullptr;  // nullptr = no metrics export
    std::string name = "acdc";  // trace-source name and metrics prefix
    // Computed enforcement window per processed ACK (Fig. 9/10 logging).
    // Empty = keep whatever callback is already installed.
    std::function<void(const FlowKey&, sim::Time, std::int64_t)> on_window;
  };
  void attach_observability(ObsHooks hooks);

  // Re-homes the vSwitch core onto a shard's simulator. Only legal before
  // any packet has been processed (the periodic scan/GC timers arm lazily
  // on first traffic).
  void rebind_simulator(sim::Simulator* sim) {
    assert(!scan_armed_ && !gc_armed_);
    core_.sim = sim;
  }

  // ---- §3.3 flexibility features ----
  // Crafts a TCP window update toward the VM for data flow `key`
  // (key = the VM's data direction), advertising the current enforced
  // window without waiting for an ACK from the receiver.
  bool send_window_update(const FlowKey& key);
  // Generates `count` duplicate ACKs toward the VM to trigger its fast
  // retransmit (e.g. when the VM's RTO is much larger than AC/DC's).
  bool send_dupacks(const FlowKey& key, int count);

 protected:
  void handle_egress(net::PacketPtr packet) override;
  void handle_ingress(net::PacketPtr packet) override;

 private:
  void ensure_timers();
  void run_inactivity_scan();
  void run_gc();
  // Absorbs AcdcStats plus a live flow-table-size gauge into the registry
  // as `prefix.*` (attach_observability's metrics half).
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;
  net::PacketPtr craft_ack_toward_vm(const FlowEntry& entry) const;

  AcdcCore core_;
  SenderModule sender_;
  ReceiverModule receiver_;
  bool scan_armed_ = false;
  bool gc_armed_ = false;
};

}  // namespace acdc::vswitch
