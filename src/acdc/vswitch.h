// The AC/DC vSwitch datapath: a DuplexFilter sitting between the tenant TCP
// stack and the NIC (Fig. 3). Every packet is matched against the flow
// table; the sender and receiver modules implement §3's design:
//
//   egress:  [sender] track seqs, mark ECT, police  ->
//            [receiver] attach PACK / emit FACK      -> NIC
//   ingress: [receiver] count + strip ECN            ->
//            [sender] feedback, virtual CC, RWND enforcement -> VM
//
// Ingress additionally has a burst path (process_burst): when the NIC
// coalesces an rx batch, a prefetch pass warms the flow-table lines for the
// whole burst before per-packet processing runs — same semantics, fewer
// stalls (DESIGN.md §14).
//
// Also hosts the periodic inactivity scan (timeout inference, §3.1), the
// flow-table garbage collector (§4) and the §3.3 flexibility features
// (vSwitch-generated window updates and duplicate ACKs).
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <string>

#include "acdc/core.h"
#include "acdc/receiver_module.h"
#include "acdc/sender_module.h"
#include "net/datapath.h"
#include "sim/simulator.h"

namespace acdc::vswitch {

class AcdcVswitch : public net::DuplexFilter {
 public:
  AcdcVswitch(sim::Simulator* sim, AcdcConfig config);

  AcdcCore& core() { return core_; }
  const AcdcConfig& config() const { return core_.config; }
  PolicyEngine& policy() { return core_.policy; }
  FlowTable& flows() { return core_.table; }
  const AcdcStats& stats() const { return core_.stats; }

  // Ingress burst entry point: processes `count` packets in arrival order
  // after one table-prefetch pass over the whole burst. Byte-for-byte
  // equivalent to `count` single-packet deliveries — the prefetches are the
  // only difference. The NIC's rx coalescer is the normal caller (through
  // ingress_in()'s burst adapter); benches drive it directly.
  void process_burst(net::PacketPtr* packets, std::size_t count);

  // Bundled observability wiring. One call replaces the old set_trace /
  // register_metrics / set_window_observer trio so a vSwitch is instrumented
  // atomically: trace events and metrics share `name`, and the legacy
  // window callback is fed from the same emission point as the recorder's
  // kWindowEnforced event (AcdcCore::emit_window_enforced).
  struct ObsHooks {
    obs::FlightRecorder* recorder = nullptr;  // nullptr = tracing off
    obs::MetricsRegistry* metrics = nullptr;  // nullptr = no metrics export
    std::string name = "acdc";  // trace-source name and metrics prefix
    // Computed enforcement window per processed ACK (Fig. 9/10 logging).
    // Empty = keep whatever callback is already installed.
    std::function<void(const FlowKey&, sim::Time, std::int64_t)> on_window;
  };
  void attach_observability(ObsHooks hooks);

  // Re-homes the vSwitch core onto a shard's simulator. Only legal before
  // any packet has been processed (the periodic scan/GC timers arm lazily
  // on first traffic).
  void rebind_simulator(sim::Simulator* sim) {
    assert(!scan_armed_ && !gc_armed_);
    core_.sim = sim;
  }

  // ---- §3.3 flexibility features ----
  // Crafts a TCP window update toward the VM for data flow `key`
  // (key = the VM's data direction), advertising the current enforced
  // window without waiting for an ACK from the receiver.
  bool send_window_update(const FlowKey& key);
  // Generates `count` duplicate ACKs toward the VM to trigger its fast
  // retransmit (e.g. when the VM's RTO is much larger than AC/DC's).
  bool send_dupacks(const FlowKey& key, int count);

 protected:
  void handle_egress(net::PacketPtr packet) override;
  void handle_ingress(net::PacketPtr packet) override;
  void handle_egress_burst(net::PacketPtr* packets,
                           std::size_t count) override;
  void handle_ingress_burst(net::PacketPtr* packets,
                            std::size_t count) override;

 private:
  void ensure_timers();
  // Two-stage prefetch pipeline of both burst paths (DESIGN.md §14),
  // direction-agnostic because both directions probe the same two keys —
  // the packet's own for data tracking, the reversed one for ACK
  // processing. Stage 1 (issued furthest ahead) warms the ctrl bytes both
  // keys will probe; stage 2 scans them to the resolved slot and warms the
  // key/gen lane and hot record there (FlowTable::prefetch).
  void prefetch_stage1(const net::Packet& p) const;
  void prefetch_stage2(const net::Packet& p) const;
  void run_inactivity_scan();
  void run_gc();
  // Absorbs AcdcStats plus a live flow-table-size gauge into the registry
  // as `prefix.*` (attach_observability's metrics half).
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;
  net::PacketPtr craft_ack_toward_vm(const FlowRef& f) const;

  AcdcCore core_;
  SenderModule sender_;
  ReceiverModule receiver_;
  bool scan_armed_ = false;
  bool gc_armed_ = false;
};

}  // namespace acdc::vswitch
