#include "acdc/flow_key.h"

namespace acdc::vswitch {

std::string FlowKey::to_string() const {
  return net::ip_to_string(src_ip) + ":" + std::to_string(src_port) + "->" +
         net::ip_to_string(dst_ip) + ":" + std::to_string(dst_port);
}

}  // namespace acdc::vswitch
