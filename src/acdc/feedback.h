// PACK/FACK feedback codec (§3.2): the receiver-side vSwitch reports running
// totals of received and CE-marked bytes back to the sender-side vSwitch,
// piggy-backed on ACKs as a TCP option (PACK) or, when the option would not
// fit the MTU, as a dedicated feedback-only packet (FACK).
#pragma once

#include <cstdint>
#include <optional>

#include "net/packet.h"

namespace acdc::vswitch {

// Attaches the feedback option to `ack` if the resulting packet still fits
// `mtu_bytes`. Returns true on success. When `telem` is set the extended
// 26-byte option shape carrying the INT telemetry echo is used
// (DESIGN.md §13); it competes with SACK blocks for the 40-byte budget, so
// a telemetry-bearing feedback falls back to a FACK more often.
bool attach_pack(net::Packet& ack, std::uint32_t total_bytes,
                 std::uint32_t marked_bytes, std::int64_t mtu_bytes,
                 const std::optional<net::TelemetryStamp>& telem =
                     std::nullopt);

// Builds a FACK: a minimal duplicate of `ack` carrying only the feedback
// option (no payload), flagged so the sender module consumes it.
net::PacketPtr make_fack(const net::Packet& ack, std::uint32_t total_bytes,
                         std::uint32_t marked_bytes,
                         const std::optional<net::TelemetryStamp>& telem =
                             std::nullopt);

// Removes and returns the feedback option, if present.
std::optional<net::AcdcFeedback> consume_feedback(net::Packet& packet);

}  // namespace acdc::vswitch
