// Per-flow connection-tracking state reconstructed by the vSwitch (§3.1,
// Fig. 4) plus the virtual congestion-control variables (§3.2) and the
// receiver-side feedback counters. One entry exists per flow *direction*;
// a TCP connection therefore has two entries, as in the paper (§4).
//
// The paper reports 320 bytes of state per entry; this struct is of the same
// order. All algorithm state is inline (no per-flow heap objects) so the
// flow table stays cache-friendly — the property the CPU-overhead
// microbenchmarks probe.
#pragma once

#include <cstdint>

#include "acdc/policy.h"
#include "net/packet.h"
#include "sim/time.h"
#include "tcp/seq.h"

namespace acdc::vswitch {

// Sender-side (egress data / ingress ACK) state for one flow.
struct SenderFlowState {
  // ---- Reconstructed TCP variables (Fig. 4) ----
  tcp::Seq snd_una = 0;
  tcp::Seq snd_nxt = 0;
  bool seq_valid = false;  // set once the first egress segment is seen
  std::uint32_t dupacks = 0;

  // ---- Handshake-derived parameters (§3.3) ----
  std::uint32_t mss = 1460;
  std::uint8_t peer_wscale = 0;  // scale of windows advertised by the peer
  bool peer_wscale_valid = false;
  bool vm_requested_ecn = false;  // local VM sent ECN-setup SYN
  bool vm_ecn_negotiated = false; // both VMs agreed on ECN

  // ---- Feedback accounting (running totals from PACK/FACK, §3.2) ----
  std::uint32_t fb_total = 0;
  std::uint32_t fb_marked = 0;
  bool fb_valid = false;

  // ---- Virtual congestion control ----
  double cwnd_bytes = 0.0;
  double ssthresh_bytes = 1e18;
  double alpha = 1.0;             // DCTCP EWMA
  std::int64_t win_total = 0;     // feedback bytes in the current window
  std::int64_t win_marked = 0;
  tcp::Seq cc_window_end = 0;     // observation-window boundary (one RTT)
  bool window_boundary_valid = false;
  bool reduced_this_window = false;
  // Virtual CUBIC epoch state.
  double cubic_w_last_max = 0.0;
  double cubic_k = 0.0;
  double cubic_origin = 0.0;
  double cubic_tcp_wnd = 0.0;
  sim::Time cubic_epoch_start = sim::kNoTime;
  // Virtual PowerTCP gradient state: the previous telemetry sample the
  // queue derivative is differenced against (DESIGN.md §13).
  std::uint32_t pt_prev_qlen_bytes = 0;
  std::uint32_t pt_prev_ts_us = 0;
  bool pt_prev_valid = false;
  // Normalized power smoothed over the base-RTT timescale; without the
  // smoothing, one sample taken across a pure-drain gap (gradient = -rate)
  // slams the window to the cap and the control loop relaxation-oscillates.
  double pt_power = 1.0;

  // ---- Enforcement bookkeeping ----
  std::int64_t last_enforced_rwnd = -1;
  // Most recent ACK fields seen towards the VM, for §3.3 window-update and
  // dupACK generation.
  tcp::Seq last_ack_seq = 0;
  std::uint16_t last_ack_raw_window = 0;
  bool ack_seen = false;

  // Inferred-timeout bookkeeping.
  sim::Time last_timeout_at = sim::kNoTime;
};

// Receiver-side (ingress data / egress ACK) state for one flow.
struct ReceiverFlowState {
  std::uint32_t total_bytes = 0;   // running totals; wrap mod 2^32 on wire
  std::uint32_t marked_bytes = 0;
  bool active = false;             // data has been seen for this flow
  bool vm_ecn_negotiated = false;  // local (receiving) VM negotiated ECN
  bool sender_vm_requested_ecn = false;  // NS bit from the sender's SYN
  // Latest INT telemetry observed on ingress data (net/telemetry.h); echoed
  // to the sender inside the extended PACK/FACK option and then stripped
  // from the packet before the VM.
  net::TelemetryStamp telem;
  bool telem_valid = false;
};

struct FlowEntry {
  FlowKey key;
  FlowPolicy policy;
  SenderFlowState snd;
  ReceiverFlowState rcv;
  sim::Time created_at = 0;
  sim::Time last_activity = 0;
  bool fin_seen = false;

  // Intrusive hooks for FlowTable's oldest-idle eviction order. Owned and
  // maintained exclusively by FlowTable (touch/insert/erase); entries sit
  // behind unique_ptr so these links survive hash-table rehashes.
  FlowEntry* lru_prev = nullptr;
  FlowEntry* lru_next = nullptr;
};

}  // namespace acdc::vswitch
