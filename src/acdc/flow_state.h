// Per-flow connection-tracking state reconstructed by the vSwitch (§3.1,
// Fig. 4) plus the virtual congestion-control variables (§3.2) and the
// receiver-side feedback counters. One record exists per flow *direction*;
// a TCP connection therefore has two, as in the paper (§4).
//
// The state is split for cache lines, not convenience (DESIGN.md §14):
//
//   FlowHot  — the table slot itself: probe identity (key + generation),
//              LRU links, and everything the per-packet path touches —
//              sequence tracking, feedback counters, RWND-rewrite state,
//              the CC scalars, the RFC 6298 RTT estimator and a packed
//              copy of the policy fields the datapath reads per packet.
//              Exactly four cache lines; the first two cover the universal
//              data/ACK bookkeeping, the rest is per-window state and the
//              per-kind CC aux union.
//   FlowCold — lifecycle and telemetry: creation time, the authoritative
//              FlowPolicy, the last INT stamp and timeout forensics. Only
//              the GC, the inactivity scan and handshake packets read it.
//
// FlowTable stores the halves in parallel slot-indexed lanes; callers
// address a flow through a generation-checked FlowHandle and work on it
// through a FlowRef.
#pragma once

#include <cstddef>
#include <cstdint>

#include "acdc/flow_key.h"
#include "acdc/policy.h"
#include "acdc/rtt_estimator.h"
#include "net/packet.h"
#include "sim/time.h"
#include "tcp/seq.h"

namespace acdc::vswitch {

// Virtual CUBIC epoch state. `epoch_valid` replaces the old kNoTime
// sentinel so that all-zero bytes are a valid "fresh epoch" encoding — the
// whole CcState union can be reset with one zero fill.
struct CubicCc {
  double w_last_max;
  double k;
  double origin;
  double tcp_wnd;
  sim::Time epoch_start;
  bool epoch_valid;
};

// Virtual PowerTCP gradient state: the previous telemetry sample the queue
// derivative is differenced against (DESIGN.md §13), and the normalized
// power smoothed over the base-RTT timescale. Zero bytes are valid here
// too: prev_valid == false routes the first telemetry ACK through the
// direct-assignment path, which overwrites `power` before any read.
struct PowerCc {
  double power;
  std::uint32_t prev_qlen_bytes;
  std::uint32_t prev_ts_us;
  bool prev_valid;
};

// Per-kind CC aux state. A flow runs exactly one algorithm, so the variants
// overlay; DCTCP and NewReno use neither. Zero-filled on (re)init.
union CcState {
  CubicCc cubic;
  PowerCc pt;
};

// Hot half: the only record the per-packet path dereferences in steady
// state. Kept trivially copyable so FlowTable can relocate it on rehash
// with a plain copy. The table's probe identity (key + generation) and the
// LRU links are embedded here rather than kept in side arrays: at 1M+
// resident flows every random lane is a separate DRAM line AND a separate
// 4 KB page, so folding identity into the record turns three random lines
// per lookup into two — and one page walk instead of two where the kernel
// can't grant huge pages.
//
// The layout is line-budgeted: every field the universal per-packet path
// touches (identity, sequence tracking, feedback, enforcement, the CC
// scalars, the RTT estimator) packs into the first TWO cache lines — the
// static_asserts below pin that. The third line holds per-window and
// receiver-direction state (the DCTCP alpha is read/written once per
// window, beta once per reduction, the rcv_* counters only on ingress
// data), and the per-kind CC aux union follows it. The burst path's
// stage-2 prefetch warms exactly lines one and two; the rest fault on the
// per-window/per-direction paths that need them. Sizes are chosen for the
// budget: window feedback accumulators are u32 (bounded by one RTT of
// data), and the enforcement copies are 32-bit because a TCP window can
// never exceed 2^30 bytes (65535 << the wscale cap of 14).
struct alignas(64) FlowHot {
  // ======== Line 1: identity + per-packet bookkeeping ========
  // ---- Table-owned probe identity (written only by FlowTable) ----
  FlowKey key{};
  std::uint32_t gen = 0;  // 0 = vacant slot; never reused once issued

  // ---- Reconstructed TCP variables (Fig. 4) ----
  tcp::Seq snd_una = 0;
  tcp::Seq snd_nxt = 0;
  std::uint32_t dupacks = 0;

  // ---- Feedback accounting (running totals from PACK/FACK, §3.2) ----
  std::uint32_t fb_total = 0;
  std::uint32_t fb_marked = 0;

  // ---- Observation-window boundary (one RTT of data, Fig. 5) ----
  tcp::Seq cc_window_end = 0;

  // ---- §3.3 injection template: last ACK seen toward the VM ----
  tcp::Seq last_ack_seq = 0;
  std::uint16_t last_ack_raw_window = 0;

  // ---- Handshake-derived parameters (§3.3) ----
  std::uint16_t mss = 1460;
  std::uint8_t peer_wscale = 0;

  // Packed copy of FlowPolicy::kind — virtual_cc_for() runs per ACK; the
  // authoritative policy lives in FlowCold.
  VccKind cc_kind = VccKind::kDctcp;

  // ---- Flags ----
  bool seq_valid : 1 = false;  // set once the first egress segment is seen
  bool fb_valid : 1 = false;
  bool peer_wscale_valid : 1 = false;
  bool window_boundary_valid : 1 = false;
  bool reduced_this_window : 1 = false;
  bool ack_seen : 1 = false;
  bool fin_seen : 1 = false;          // FIN or RST: fast-GC candidate
  bool police : 1 = false;            // policy copy
  bool vm_requested_ecn : 1 = false;  // local VM sent ECN-setup SYN
  bool vm_ecn_negotiated : 1 = false; // both VMs agreed on ECN
  bool rcv_active : 1 = false;        // data seen in the ingress direction
  bool rcv_vm_ecn_negotiated : 1 = false;
  bool rcv_sender_vm_requested_ecn : 1 = false;  // NS bit off the SYN
  bool rcv_telem_valid : 1 = false;   // FlowCold::telem holds a fresh stamp
  bool rtt_sample_pending : 1 = false;

  // Exponential RTO backoff (shift count); reset by each completed sample.
  std::uint8_t rto_backoff = 0;

  // Stamped by FlowTable::touch on every attributed packet; the LRU order
  // follows it, so the eviction head is always the oldest-idle flow.
  sim::Time last_activity = 0;

  // ======== Line 2: enforcement + CC scalars + RTT estimation ========
  // ---- Enforcement bookkeeping ----
  std::int32_t last_enforced_rwnd = -1;  // clamped at 2^31-1; -1 = never
  std::uint32_t max_rwnd_bytes = 0;      // policy copy; 0 = uncapped

  // ---- Virtual congestion control ----
  double cwnd_bytes = 0.0;
  double ssthresh_bytes = 1e18;
  std::uint32_t win_total = 0;     // feedback bytes in the current window
  std::uint32_t win_marked = 0;

  // ---- RFC 6298 RTT estimation (rtt_estimator.h) ----
  RttEstimator rtt;
  tcp::Seq rtt_sample_end = 0;        // sampled segment's end sequence
  sim::Time rtt_sample_sent_at = 0;

  // ---- Table-owned eviction order (written only by FlowTable) ----
  std::uint32_t lru_prev = 0;
  std::uint32_t lru_next = 0;

  // ======== Line 3: per-window + receiver-direction state ========
  double beta = 1.0;   // policy copy (Eq. 1 QoS priority); read on reduction
  double alpha = 1.0;  // DCTCP EWMA; updated once per window

  // ---- Receiver-side counters (ingress data direction) ----
  std::uint32_t rcv_total_bytes = 0;  // wrap mod 2^32 on the wire
  std::uint32_t rcv_marked_bytes = 0;

  // ---- Per-kind CC aux state (CUBIC / PowerTCP only) ----
  CcState cc{};

  // Re-initialises every per-incarnation field for a recycled 4-tuple,
  // preserving the table-owned identity (key, generation, LRU links) and
  // the activity stamp the eviction order keys on.
  void reset_runtime() {
    FlowHot fresh;
    fresh.key = key;
    fresh.gen = gen;
    fresh.lru_prev = lru_prev;
    fresh.lru_next = lru_next;
    fresh.last_activity = last_activity;
    *this = fresh;
  }
};

static_assert(offsetof(FlowHot, last_enforced_rwnd) == 64,
              "identity + per-packet bookkeeping must fill exactly line 1");
static_assert(offsetof(FlowHot, beta) == 128,
              "universal per-packet fields must fit the first two lines");

// Narrows a policy's 64-bit RWND cap into FlowHot's packed 32-bit copy.
// Saturating is lossless in effect: a cap at or past 4 GB stays non-zero
// (still "capped") but can never bind, because an enforced window tops out
// at 2^30 bytes.
inline std::uint32_t packed_rwnd_cap(std::int64_t max_rwnd_bytes) {
  if (max_rwnd_bytes <= 0) return 0;
  if (max_rwnd_bytes > static_cast<std::int64_t>(UINT32_MAX)) {
    return UINT32_MAX;
  }
  return static_cast<std::uint32_t>(max_rwnd_bytes);
}

// Cold half: off the per-packet path. Touched on handshake, GC, the
// inactivity scan and telemetry echo.
struct FlowCold {
  FlowPolicy policy;  // authoritative; FlowHot carries the per-packet copy
  sim::Time created_at = 0;
  // Inferred-timeout bookkeeping (one reaction per stall).
  sim::Time last_timeout_at = sim::kNoTime;
  // Latest INT telemetry observed on ingress data (net/telemetry.h); echoed
  // to the sender inside the extended PACK/FACK option and then stripped
  // from the packet before the VM. Valid iff FlowHot::rcv_telem_valid.
  net::TelemetryStamp telem;
};

static_assert(sizeof(FlowHot) == 256,
              "FlowHot is the table slot: exactly four cache lines");

}  // namespace acdc::vswitch
