// Shared state of one AC/DC vSwitch instance: configuration, the flow
// table, the policy engine and counters. SenderModule / ReceiverModule / the
// vSwitch datapath all operate on this core.
#pragma once

#include <cstdint>
#include <functional>

#include "acdc/flow_table.h"
#include "acdc/policy.h"
#include "acdc/virtual_cc.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace acdc::vswitch {

struct AcdcConfig {
  // Master switch: false = observer mode — compute windows and feedback but
  // never rewrite RWND (used by Fig. 9's tracking experiment).
  bool enforce = true;
  // Mark egress data packets ECT(0) so switches mark instead of drop (§3.2).
  bool mark_egress_ect = true;
  // Strip CE/ECT from data before the receiving VM sees it (§3.2).
  bool strip_ecn_at_receiver = true;
  // Strip ECN-Echo from ACKs before the sending VM sees it (§3.3: hiding
  // feedback stops the VM stack from reducing on its own).
  bool hide_ecn_feedback = true;
  // Generate PACK/FACK feedback at the receiver module (§3.2).
  bool generate_feedback = true;
  // Fabric MTU; a PACK that would push an ACK past this becomes a FACK.
  std::int64_t mtu_bytes = 9000;
  // Enforced-window floor; 0 means one MSS.
  std::int64_t min_rwnd_bytes = 0;
  // Extra window slack tolerated before the policer drops (in MSS).
  double police_slack_mss = 4.0;
  VccConfig vcc;
  // Timeout inference (§3.1): the scan visits stalled flows every interval;
  // a flow whose RFC 6298 estimator has a sample times out at its own RTO
  // (clamped to [min_rto, max_rto]), sample-less flows fall back to the
  // fixed inactivity_timeout.
  bool infer_timeouts = true;
  sim::Time inactivity_scan_interval = sim::milliseconds(10);
  sim::Time inactivity_timeout = sim::milliseconds(40);
  sim::Time min_rto = sim::milliseconds(10);
  sim::Time max_rto = sim::seconds(4);
  // §3.3: on an inferred timeout, generate duplicate ACKs toward the VM to
  // trigger its fast retransmit (useful when the VM RTO is large).
  bool inject_dupacks_on_timeout = false;
  sim::Time gc_interval = sim::seconds(1);
  sim::Time idle_timeout = sim::seconds(60);
  sim::Time fin_linger = sim::seconds(1);
  // §4 memory bound: cap on flow-table entries (0 = unbounded). At the cap
  // a new flow either evicts the oldest-idle entry (kEvictOldest) or is
  // refused admission and passes through unmanaged (kReject). Under SYN
  // churn this is what keeps per-flow state bounded.
  std::int64_t flow_table_max_entries = 0;
  FlowTable::OverflowPolicy flow_table_overflow =
      FlowTable::OverflowPolicy::kEvictOldest;

  // Fig. 9 methodology: compute windows and run the feedback machinery but
  // leave the VM's traffic completely untouched (no RWND overwrite, no ECN
  // masking) — the host stack must drive congestion control itself.
  static AcdcConfig observer() {
    AcdcConfig cfg;
    cfg.enforce = false;
    cfg.mark_egress_ect = false;
    cfg.strip_ecn_at_receiver = false;
    cfg.hide_ecn_feedback = false;
    return cfg;
  }
};

struct AcdcStats {
  std::int64_t egress_data_packets = 0;
  std::int64_t ingress_data_packets = 0;
  std::int64_t acks_processed = 0;
  std::int64_t packs_attached = 0;
  std::int64_t facks_sent = 0;
  std::int64_t facks_consumed = 0;
  std::int64_t windows_lowered = 0;
  std::int64_t policed_drops = 0;
  std::int64_t inferred_timeouts = 0;
  std::int64_t injected_dupacks = 0;
  std::int64_t injected_window_updates = 0;
  std::int64_t rtt_samples = 0;
  // Feedback deltas clamped after a remote flow-entry eviction restarted
  // the receiver's running totals (marked delta exceeded total delta).
  std::int64_t feedback_resyncs = 0;
  // Per-direction single-entry lookup caches (see AcdcCore::entry/find).
  std::int64_t flow_cache_hits = 0;
  std::int64_t flow_cache_misses = 0;
};

struct AcdcCore {
  sim::Simulator* sim = nullptr;
  AcdcConfig config;
  FlowTable table;
  PolicyEngine policy;
  AcdcStats stats;

  // Flight recorder (nullptr = tracing off; one branch per hook).
  obs::FlightRecorder* trace = nullptr;
  std::uint32_t trace_source = 0;

  // Legacy per-ACK window observer (the Fig. 9/10 "log RWND to a file"
  // analogue). Now a thin adapter over the kWindowEnforced trace event:
  // emit_window_enforced() feeds both from the same data.
  std::function<void(const FlowKey&, sim::Time, std::int64_t)> on_window;

  bool tracing() const { return trace != nullptr && trace->enabled(); }

  // Flow-stamped event skeleton for the recorder.
  obs::TraceEvent flow_event(obs::EventType type, const FlowKey& key) const {
    obs::TraceEvent ev;
    ev.t = sim->now();
    ev.type = type;
    ev.source = trace_source;
    ev.src_ip = key.src_ip;
    ev.dst_ip = key.dst_ip;
    ev.src_port = key.src_port;
    ev.dst_port = key.dst_port;
    return ev;
  }

  // The RWND-enforcement observation point: records a kWindowEnforced trace
  // event and replays it to the legacy on_window observer.
  void emit_window_enforced(const FlowRef& f, std::int64_t wnd) {
    if (tracing()) {
      obs::TraceEvent ev =
          flow_event(obs::EventType::kWindowEnforced, *f.key);
      ev.a = wnd;
      ev.b = static_cast<std::int64_t>(f.hot->cwnd_bytes);
      ev.x = f.hot->alpha;
      trace->record(ev);
    }
    if (on_window) on_window(*f.key, sim->now(), wnd);
  }

  // Single-entry lookup caches, one per datapath direction so the four hot
  // call sites never evict each other. A slot remembers the last key looked
  // up there together with the generation-checked handle it resolved to;
  // a repeat of the same key revalidates with one bounds check plus one
  // integer compare (FlowTable::deref) — no hashing, no probing. Erase, GC,
  // eviction and rehash all retire the handle's generation, so a stale slot
  // simply fails deref and falls through to a real lookup. This replaces
  // the old whole-table version counter: invalidation is per-flow and
  // cannot be forgotten, and a membership change elsewhere in the table no
  // longer evicts unrelated cache slots.
  struct FlowCacheSlot {
    FlowKey key{};
    FlowHandle handle{};
  };
  static constexpr int kCacheSndEgress = 0;      // sender module, data out
  static constexpr int kCacheSndIngressAck = 1;  // sender module, ACK in
  static constexpr int kCacheRcvIngressData = 2; // receiver module, data in
  static constexpr int kCacheRcvEgressAck = 3;   // receiver module, ACK out
  static constexpr int kCacheSlots = 4;
  FlowCacheSlot flow_cache[kCacheSlots];

  // Looks up or creates the flow for `key`, binding its policy and
  // initialising the virtual CC on creation. `slot` selects which direction
  // cache fronts the table lookup. Returns a null FlowRef when the table is
  // at its cap under OverflowPolicy::kReject — the packet then passes
  // through unmanaged (no tracking, no policing, but the transparency
  // transforms still apply at the call sites).
  FlowRef entry(const FlowKey& key, int slot) {
    FlowCacheSlot& c = flow_cache[slot];
    if (c.handle.valid() && c.key == key) {
      FlowRef f = table.deref(c.handle);
      if (f) {
        ++stats.flow_cache_hits;
        return f;
      }
    }
    ++stats.flow_cache_misses;
    FlowRef f = table.find_or_create(key, sim->now());
    if (!f) return f;  // rejected admission: never cached
    if (f.created) bind_policy(f);
    c.key = key;
    c.handle = f.handle;
    return f;
  }

  // Cached find. Unlike the old version-stamped cache this never caches
  // absence — there is no table-wide epoch to tie a negative result to —
  // so misses always probe. The hot directions (established flows) still
  // hit the handle path.
  FlowRef find(const FlowKey& key, int slot) {
    FlowCacheSlot& c = flow_cache[slot];
    if (c.handle.valid() && c.key == key) {
      FlowRef f = table.deref(c.handle);
      if (f) {
        ++stats.flow_cache_hits;
        return f;
      }
    }
    ++stats.flow_cache_misses;
    FlowRef f = table.find(key);
    if (f) {
      c.key = key;
      c.handle = f.handle;
    }
    return f;
  }

  // Policy binding on creation: the authoritative FlowPolicy lands in the
  // cold record, the fields the per-packet path reads are copied into the
  // hot record, and the flow's virtual CC is initialised.
  void bind_policy(const FlowRef& f) {
    f.cold->policy = policy.lookup(*f.key);
    const FlowPolicy& p = f.cold->policy;
    f.hot->cc_kind = p.kind;
    f.hot->beta = p.beta;
    f.hot->max_rwnd_bytes = packed_rwnd_cap(p.max_rwnd_bytes);
    f.hot->police = p.police;
    virtual_cc_for(p.kind).init(*f.hot, config.vcc);
  }

  std::int64_t min_rwnd_bytes(const FlowHot& s) const {
    return config.min_rwnd_bytes > 0 ? config.min_rwnd_bytes : s.mss;
  }

  // Restarts a flow in place for a recycled 4-tuple (fresh SYN over a
  // FIN-marked entry the GC has not swept yet). Key, slot, handle, policy
  // and the LRU position survive; all per-incarnation state is
  // re-initialised.
  void reset_entry(const FlowRef& f) {
    f.hot->reset_runtime();
    const FlowPolicy& p = f.cold->policy;
    f.hot->cc_kind = p.kind;
    f.hot->beta = p.beta;
    f.hot->max_rwnd_bytes = packed_rwnd_cap(p.max_rwnd_bytes);
    f.hot->police = p.police;
    f.cold->created_at = sim->now();
    f.cold->last_timeout_at = sim::kNoTime;
    f.cold->telem = {};
    virtual_cc_for(p.kind).init(*f.hot, config.vcc);
  }
};

}  // namespace acdc::vswitch
