// The AC/DC sender module (§3, left side of Fig. 3): on egress data it
// reconstructs sequence state, marks packets ECT, takes RTT samples and
// polices non-conforming flows; on ingress ACKs it extracts PACK/FACK
// feedback, updates the reconstructed connection variables, completes RTT
// samples (RFC 6298, Karn's rule), runs the virtual congestion control
// (Fig. 5) and enforces the result by overwriting RWND (§3.3).
#pragma once

#include "acdc/core.h"
#include "net/packet.h"

namespace acdc::vswitch {

class SenderModule {
 public:
  explicit SenderModule(AcdcCore& core) : core_(core) {}

  // Egress packets in the data direction (payload/SYN/FIN). Returns false
  // when the policer consumed the packet.
  bool process_egress(net::Packet& packet);

  // Ingress packets carrying an ACK for our data direction. Returns false
  // when the packet was consumed (FACK).
  bool process_ingress_ack(net::Packet& packet);

  // Periodic stall scan: infers RTOs (§3.1) at each flow's own RFC 6298
  // RTO when an estimate exists, else at the configured inactivity
  // timeout. Returns the number of flows whose virtual CC was reset.
  int infer_timeouts(sim::Time now);

 private:
  void learn_from_egress_syn(const FlowRef& f, const net::Packet& syn);
  void learn_from_ingress_synack(const FlowRef& f, const net::Packet& synack);
  void track_sequences(FlowHot& s, const net::Packet& packet, sim::Time now);
  bool police(const FlowRef& f, const net::Packet& packet);
  void enforce_window(const FlowRef& f, net::Packet& ack);
  std::int64_t enforced_window_bytes(const FlowHot& s) const;

  AcdcCore& core_;
};

}  // namespace acdc::vswitch
