// Virtual congestion control: the algorithms AC/DC runs *in the vSwitch*
// over reconstructed per-flow state. The flagship is the paper's
// priority-extended DCTCP (Fig. 5 + Eq. 1); virtual NewReno and CUBIC show
// the §3.1 machinery supports canonical algorithms and back the per-flow
// policy engine (§3.4).
//
// Algorithms are stateless singletons: all per-flow state lives inline in
// FlowHot so the flow table stays compact (§4). Tuning lives in VccConfig —
// a small shared core plus one typed sub-config per algorithm family
// (DctcpConfig / PowerTcpConfig / FairRateConfig), selected by the flow's
// VccKind, so adding a controller grows its own struct rather than one
// shared bag of loosely-owned fields.
#pragma once

#include <cstdint>
#include <string_view>

#include "acdc/flow_state.h"
#include "sim/time.h"

namespace acdc::vswitch {

// What the sender module observed on one ingress ACK (or inferred event).
struct VccEvent {
  std::int64_t acked_bytes = 0;     // snd_una advance
  std::int64_t fb_total_delta = 0;  // feedback: bytes newly covered
  std::int64_t fb_marked_delta = 0; // feedback: CE-marked bytes among them
  bool dupack = false;
  std::uint32_t dupacks = 0;  // current duplicate-ACK count
  sim::Time now = 0;
  // Per-flow measured base RTT (µs) from the hot record's RFC 6298
  // estimator; 0 until the first sample lands, in which case algorithms
  // fall back to the configured fabric-wide τ.
  double base_rtt_us = 0.0;
  // INT telemetry echoed in the extended PACK/FACK option (DESIGN.md §13);
  // valid only when `telemetry` is set. Algorithms that need it fall back
  // to Reno-style growth on telemetry-blind ACKs.
  bool telemetry = false;
  std::uint32_t qlen_bytes = 0;        // bottleneck egress queue depth
  std::uint32_t tx_bytes_per_ms = 0;   // bottleneck drain rate
  std::uint32_t fair_bytes_per_ms = 0; // min fair share across hops
  std::uint32_t ts_us = 0;             // stamping hop's clock (µs, wraps)
};

// ---- Per-kind tuning ------------------------------------------------------

struct DctcpConfig {
  double g = 1.0 / 16.0;  // EWMA gain for the marked-fraction estimate
};

// PowerTCP (arxiv 2112.14309).
struct PowerTcpConfig {
  double gamma = 0.9;     // EWMA weight of the power-derived target
  double beta_mss = 1.0;  // additive bandwidth share, in MSS
  double cap_bdps = 8.0;  // window cap as a multiple of the BDP
};

// Switch-assisted fair rate (arxiv 2106.14100): window = fair_rate·τ·margin.
// The margin buys headroom for τ underestimating the true RTT; the clamp
// still only ever lowers the VM's own window.
struct FairRateConfig {
  double window_rtts = 1.5;
};

struct VccConfig {
  // ---- shared across algorithms ----
  double initial_cwnd_packets = 10;  // RFC 6928 (§3.1)
  std::uint32_t loss_dupacks = 3;
  // Fabric base-RTT estimate (µs): the τ fallback used until the flow's own
  // RFC 6298 estimator has a sample (VccEvent::base_rtt_us).
  double base_rtt_us = 40.0;
  // ---- per-kind ----
  DctcpConfig dctcp;
  PowerTcpConfig powertcp;
  FairRateConfig fair;
};

class VirtualCc {
 public:
  virtual ~VirtualCc() = default;
  virtual std::string_view name() const = 0;

  // Prepares a fresh hot record (initial window, zeroed CC aux state).
  void init(FlowHot& s, const VccConfig& cfg) const;

  // Updates s.cwnd_bytes from one ACK's worth of evidence. Fig. 5 flow:
  // congestion? loss? -> reduce (at most once per window) else grow. The
  // Eq. 1 QoS priority comes from the hot record's policy copy (s.beta).
  virtual void on_ack(FlowHot& s, const VccConfig& cfg,
                      const VccEvent& ev) const = 0;

  // Inferred retransmission timeout (§3.1, now RFC 6298-driven).
  virtual void on_timeout(FlowHot& s, const VccConfig& cfg) const;

 protected:
  // Shared helpers -------------------------------------------------------
  // True when snd_una has passed the recorded window boundary; rolls the
  // window forward (one boundary per RTT worth of data).
  static bool window_rolled(FlowHot& s);
  // Reno-style growth in bytes (slow start + congestion avoidance), used by
  // DCTCP and NewReno.
  static void reno_grow(FlowHot& s, std::int64_t acked_bytes);
  static double min_cwnd_bytes(const FlowHot& s);
  // τ for rate-to-window conversion: the flow's measured base RTT when the
  // estimator has one, else the configured fabric estimate.
  static double tau_us(const VccConfig& cfg, const VccEvent& ev);
};

class VirtualDctcp : public VirtualCc {
 public:
  std::string_view name() const override { return "vdctcp"; }
  void on_ack(FlowHot& s, const VccConfig& cfg,
              const VccEvent& ev) const override;
  void on_timeout(FlowHot& s, const VccConfig& cfg) const override;

  // Eq. 1: w *= 1 - (alpha - alpha*beta/2); beta = 1 is plain DCTCP.
  static double reduction_factor(double alpha, double beta);
};

class VirtualReno : public VirtualCc {
 public:
  std::string_view name() const override { return "vreno"; }
  void on_ack(FlowHot& s, const VccConfig& cfg,
              const VccEvent& ev) const override;
};

class VirtualCubic : public VirtualCc {
 public:
  std::string_view name() const override { return "vcubic"; }
  void on_ack(FlowHot& s, const VccConfig& cfg,
              const VccEvent& ev) const override;
  void on_timeout(FlowHot& s, const VccConfig& cfg) const override;

 private:
  static constexpr double kC = 0.4;
  static constexpr double kBeta = 0.7;
  void cut(FlowHot& s) const;
  void grow(FlowHot& s, const VccEvent& ev) const;
};

// Virtual PowerTCP (arxiv 2112.14309): per-ACK window control driven by
// normalized power Γ = Λ·ν / e, where Λ = q̇ + txRate (current),
// ν = qlen + BDP (voltage) and e = txRate·BDP (base power). The queue
// gradient q̇ comes from differencing consecutive telemetry stamps. Update:
//   w ← γ·(w/Γ + β·mss) + (1−γ)·w,  clamped to [mss, cap·BDP].
// Telemetry-blind ACKs fall back to Reno growth so the algorithm still
// works (degraded) on paths without INT.
class VirtualPowerTcp : public VirtualCc {
 public:
  std::string_view name() const override { return "vpowertcp"; }
  void on_ack(FlowHot& s, const VccConfig& cfg,
              const VccEvent& ev) const override;
  void on_timeout(FlowHot& s, const VccConfig& cfg) const override;

  // BDP in bytes implied by one telemetry sample at base RTT τ (exposed for
  // tests).
  static double bdp_bytes(double tau_us, std::uint32_t tx_bytes_per_ms);
};

// Switch-assisted fair-rate enforcement (arxiv 2106.14100): the switch
// computes a per-flow fair share from active-flow counts (net/telemetry.h)
// and the vSwitch drains it through the RWND rewrite: w = fair·τ·margin.
class VirtualFairRate : public VirtualCc {
 public:
  std::string_view name() const override { return "vfairrate"; }
  void on_ack(FlowHot& s, const VccConfig& cfg,
              const VccEvent& ev) const override;

  // The window a fair-share sample converts to (exposed for tests).
  static double window_bytes(double tau_us, double window_rtts,
                             std::uint32_t fair_bytes_per_ms);
};

// Returns the singleton algorithm for a policy kind.
const VirtualCc& virtual_cc_for(VccKind kind);

}  // namespace acdc::vswitch
