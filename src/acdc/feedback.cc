#include "acdc/feedback.h"

namespace acdc::vswitch {
namespace {

net::AcdcFeedback build_feedback(
    std::uint32_t total_bytes, std::uint32_t marked_bytes,
    const std::optional<net::TelemetryStamp>& telem) {
  net::AcdcFeedback fb;
  fb.total_bytes = total_bytes;
  fb.marked_bytes = marked_bytes;
  if (telem.has_value()) {
    fb.telemetry = true;
    fb.telem = *telem;
  }
  return fb;
}

}  // namespace

bool attach_pack(net::Packet& ack, std::uint32_t total_bytes,
                 std::uint32_t marked_bytes, std::int64_t mtu_bytes,
                 const std::optional<net::TelemetryStamp>& telem) {
  const net::AcdcFeedback fb = build_feedback(total_bytes, marked_bytes, telem);
  net::TcpOptions probe = ack.tcp.options;
  probe.acdc = fb;
  // The option must fit both the RFC 793 40-byte option budget (an ACK
  // already carrying full SACK blocks has no room) and the fabric MTU;
  // otherwise the feedback travels as a FACK.
  if (probe.wire_size() > net::kMaxTcpOptionBytes) return false;
  const std::int64_t probe_size = net::kIpv4HeaderBytes +
                                  net::kTcpBaseHeaderBytes +
                                  probe.wire_size() + ack.payload_bytes;
  if (probe_size > mtu_bytes) return false;
  ack.tcp.options.acdc = fb;
  return true;
}

net::PacketPtr make_fack(const net::Packet& ack, std::uint32_t total_bytes,
                         std::uint32_t marked_bytes,
                         const std::optional<net::TelemetryStamp>& telem) {
  auto fack = net::make_packet();
  fack->ip.src = ack.ip.src;
  fack->ip.dst = ack.ip.dst;
  fack->tcp.src_port = ack.tcp.src_port;
  fack->tcp.dst_port = ack.tcp.dst_port;
  fack->tcp.seq = ack.tcp.seq;
  fack->tcp.ack_seq = ack.tcp.ack_seq;
  fack->tcp.flags.ack = true;
  fack->tcp.window_raw = ack.tcp.window_raw;
  fack->tcp.options.acdc = build_feedback(total_bytes, marked_bytes, telem);
  fack->acdc_fack = true;
  return fack;
}

std::optional<net::AcdcFeedback> consume_feedback(net::Packet& packet) {
  if (!packet.tcp.options.acdc) return std::nullopt;
  const net::AcdcFeedback fb = *packet.tcp.options.acdc;
  packet.tcp.options.acdc.reset();
  return fb;
}

}  // namespace acdc::vswitch
